#include "nessa/sim/engine.hpp"

#include <stdexcept>
#include <utility>

#include "nessa/telemetry/telemetry.hpp"

namespace nessa::sim {

std::uint64_t Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Simulator::schedule_at: null callback");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

std::uint64_t Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(std::uint64_t event_id) {
  return callbacks_.erase(event_id) > 0;
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (callbacks_.find(ev.id) != callbacks_.end()) {
      out = ev;
      return true;
    }
    // Cancelled event: tombstone, skip.
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  Event ev;
  while (pop_next(ev)) {
    now_ = ev.when;
    auto node = callbacks_.extract(ev.id);
    ++processed_;
    ++count;
    node.mapped()();
  }
  telemetry::count("sim.engine.events", count);
  return count;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    Event ev = top;
    queue_.pop();
    now_ = ev.when;
    auto node = callbacks_.extract(ev.id);
    ++processed_;
    ++count;
    node.mapped()();
  }
  if (now_ < deadline) now_ = deadline;
  telemetry::count("sim.engine.events", count);
  return count;
}

}  // namespace nessa::sim
