#include "nessa/sim/fair_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace nessa::sim {

FairQueue::FlowId FairQueue::add_flow(std::uint32_t weight) {
  if (weight == 0) {
    throw std::invalid_argument("FairQueue::add_flow: weight must be >= 1");
  }
  Flow f;
  f.weight = weight;
  f.stats.weight = weight;
  // 16.16 fixed-point inverse, clamped away from zero so very heavy flows
  // still advance their finish tags (and can still be overtaken).
  f.inv_weight = std::max<std::uint32_t>(1, (std::uint32_t{1} << 16) / weight);
  flows_.push_back(std::move(f));
  return static_cast<FlowId>(flows_.size() - 1);
}

void FairQueue::submit(FlowId flow, SimTime service_time, std::uint64_t bytes,
                       const char* phase, Callback done, Callback fail) {
  Flow& f = flows_.at(flow);
  if (service_time < 0) {
    throw std::invalid_argument("FairQueue::submit: negative service time");
  }
  const std::uint64_t start = std::max(virtual_time_, f.finish_tag);
  f.finish_tag = start + tag_delta(service_time, f.inv_weight);
  f.items.push_back(Item{service_time, bytes, phase, std::move(done),
                    std::move(fail), start});
  ++f.stats.submitted;
  ++backlog_;
  if (!in_flight_) pump();
}

void FairQueue::pump() {
  if (paused_) return;
  // Smallest head start tag wins; ties resolve by flow id (heads within a
  // flow are already FIFO). Linear scan: the flow count at one shared
  // component is bounded by the jobs concurrently placed on its device,
  // not by the tenant population.
  FlowId best = 0;
  std::uint64_t best_tag = 0;
  bool found = false;
  for (FlowId i = 0; i < flows_.size(); ++i) {
    const Flow& f = flows_[i];
    if (f.items.empty()) continue;
    const std::uint64_t tag = f.items.front().start_tag;
    if (!found || tag < best_tag) {
      found = true;
      best = i;
      best_tag = tag;
    }
  }
  if (!found) return;

  Flow& f = flows_[best];
  in_flight_ = true;
  in_flight_flow_ = best;
  in_flight_item_ = std::move(f.items.front());
  f.items.pop_front();
  --backlog_;
  virtual_time_ = std::max(virtual_time_, best_tag);
  dispatch();
}

void FairQueue::dispatch() {
  // A parked retry can fire after the item it was parked for is gone
  // (abort_backlog) or already running; a paused queue re-issues from
  // resume() instead.
  if (!in_flight_ || in_flight_submitted_ || paused_) return;
  const Item& it = in_flight_item_;
  const bool accepted = component_.submit(
      it.service, it.bytes, it.phase, Callback([this] { on_complete(false); }),
      Callback([this] { on_complete(true); }));
  if (!accepted) {
    // Bounded component queue is full (another producer posts directly, or
    // a fault hook bounced the submission). Retry as soon as a slot frees;
    // the in-flight item stays parked so ordering is preserved.
    component_.when_accepting(Callback([this] { dispatch(); }));
    return;
  }
  in_flight_submitted_ = true;
}

void FairQueue::on_complete(bool failed) {
  Flow& f = flows_[in_flight_flow_];
  Item it = std::move(in_flight_item_);
  if (failed) {
    ++f.stats.failed;
  } else {
    ++f.stats.completed;
    f.stats.bytes += it.bytes;
    f.stats.service_time += it.service;
  }
  in_flight_ = false;
  in_flight_submitted_ = false;
  // Start the successor before running the continuation, mirroring
  // Component's "done runs after the next request has been started".
  pump();
  Callback cont = failed && it.fail ? std::move(it.fail) : std::move(it.done);
  if (cont) cont();
}

void FairQueue::pause() { paused_ = true; }

void FairQueue::resume() {
  if (!paused_) return;
  paused_ = false;
  if (in_flight_) {
    if (!in_flight_submitted_) dispatch();
    return;
  }
  pump();
}

std::size_t FairQueue::abort_backlog() {
  // Collect continuations first: one of them may re-submit onto this
  // queue and must see a consistent (empty) backlog.
  std::vector<Callback> continuations;
  if (in_flight_ && !in_flight_submitted_) {
    // Dispatched but never accepted by the component — the item lives
    // here, not in the component queue, so this drain owns failing it.
    Flow& f = flows_[in_flight_flow_];
    ++f.stats.failed;
    Item it = std::move(in_flight_item_);
    in_flight_ = false;
    continuations.push_back(it.fail ? std::move(it.fail) : std::move(it.done));
  }
  for (Flow& f : flows_) {
    while (!f.items.empty()) {
      Item it = std::move(f.items.front());
      f.items.pop_front();
      --backlog_;
      ++f.stats.failed;
      continuations.push_back(it.fail ? std::move(it.fail)
                                      : std::move(it.done));
    }
  }
  for (Callback& cont : continuations) {
    if (cont) cont();
  }
  return continuations.size();
}

double FairQueue::jain_index() const {
  double sum = 0.0, sum_sq = 0.0;
  std::size_t n = 0;
  for (const Flow& f : flows_) {
    if (f.stats.submitted == 0) continue;
    const double x =
        static_cast<double>(f.stats.service_time) / f.stats.weight;
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n < 2 || sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

}  // namespace nessa::sim
