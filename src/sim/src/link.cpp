#include "nessa/sim/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace nessa::sim {

Link::Link(std::string name, double bytes_per_second, SimTime latency)
    : name_(std::move(name)), bandwidth_(bytes_per_second), latency_(latency) {
  if (bandwidth_ <= 0.0) {
    throw std::invalid_argument("Link: bandwidth must be positive");
  }
  if (latency_ < 0) {
    throw std::invalid_argument("Link: latency must be non-negative");
  }
}

SimTime Link::service_time(std::uint64_t bytes) const noexcept {
  return latency_ + util::transfer_time(bytes, bandwidth_);
}

SimTime Link::submit(Simulator& sim, std::uint64_t bytes,
                     Simulator::Callback done) {
  const SimTime start = std::max(sim.now(), free_at_);
  const SimTime finish = start + service_time(bytes);
  free_at_ = finish;
  ++stats_.transfers;
  stats_.bytes += bytes;
  stats_.busy_time += finish - start;
  if (done) {
    sim.schedule_at(finish, std::move(done));
  }
  return finish;
}

SimTime Link::occupy(std::uint64_t bytes, SimTime earliest) {
  const SimTime start = std::max(earliest, free_at_);
  const SimTime finish = start + service_time(bytes);
  free_at_ = finish;
  ++stats_.transfers;
  stats_.bytes += bytes;
  stats_.busy_time += finish - start;
  return finish;
}

}  // namespace nessa::sim
