#include "nessa/sim/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nessa/telemetry/telemetry.hpp"

namespace nessa::sim {

namespace {

/// Telemetry for one transfer: an occupancy span on the link's track plus a
/// bytes-moved counter. Both sinks are null-checked by the helpers, so the
/// disabled cost is two relaxed loads per *transfer* (not per byte).
void record_transfer(const std::string& link, std::uint64_t bytes,
                     SimTime start, SimTime finish) {
  if (telemetry::trace() != nullptr) {
    telemetry::trace()->span(telemetry::Domain::kSim, "transfer", "link", link,
                             start, finish - start);
  }
  if (telemetry::metrics() != nullptr) {
    telemetry::metrics()->counter("sim.link." + link + ".bytes").add(bytes);
  }
}

}  // namespace

Link::Link(std::string name, double bytes_per_second, SimTime latency)
    : name_(std::move(name)), bandwidth_(bytes_per_second), latency_(latency) {
  if (bandwidth_ <= 0.0) {
    throw std::invalid_argument("Link: bandwidth must be positive");
  }
  if (latency_ < 0) {
    throw std::invalid_argument("Link: latency must be non-negative");
  }
}

SimTime Link::service_time(std::uint64_t bytes) const noexcept {
  return latency_ + util::transfer_time(bytes, bandwidth_);
}

SimTime Link::submit(Simulator& sim, std::uint64_t bytes,
                     Simulator::Callback done) {
  const SimTime start = std::max(sim.now(), free_at_);
  const SimTime finish = start + service_time(bytes);
  free_at_ = finish;
  ++stats_.transfers;
  stats_.bytes += bytes;
  stats_.busy_time += finish - start;
  record_transfer(name_, bytes, start, finish);
  if (done) {
    sim.schedule_at(finish, std::move(done));
  }
  return finish;
}

SimTime Link::occupy(std::uint64_t bytes, SimTime earliest) {
  const SimTime start = std::max(earliest, free_at_);
  const SimTime finish = start + service_time(bytes);
  free_at_ = finish;
  ++stats_.transfers;
  stats_.bytes += bytes;
  stats_.busy_time += finish - start;
  record_transfer(name_, bytes, start, finish);
  return finish;
}

}  // namespace nessa::sim
