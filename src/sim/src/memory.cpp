#include "nessa/sim/memory.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nessa/telemetry/telemetry.hpp"

namespace nessa::sim {

namespace {

void record_occupancy(const std::string& region, std::uint64_t used) {
  if (telemetry::metrics() != nullptr) {
    telemetry::metrics()
        ->gauge("sim.mem." + region + ".used_bytes")
        .set(static_cast<double>(used));
  }
}

}  // namespace

MemoryRegion::MemoryRegion(std::string name, std::uint64_t capacity_bytes)
    : name_(std::move(name)), capacity_(capacity_bytes) {}

bool MemoryRegion::allocate(std::uint64_t bytes) noexcept {
  if (!fits(bytes)) {
    if (telemetry::metrics() != nullptr) {
      telemetry::metrics()
          ->counter("sim.mem." + name_ + ".alloc_failures")
          .add(1);
    }
    return false;
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  record_occupancy(name_, used_);
  return true;
}

void MemoryRegion::release(std::uint64_t bytes) {
  if (bytes > used_) {
    throw std::logic_error("MemoryRegion::release: double free on " + name_);
  }
  used_ -= bytes;
  record_occupancy(name_, used_);
}

}  // namespace nessa::sim
