#include "nessa/sim/memory.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace nessa::sim {

MemoryRegion::MemoryRegion(std::string name, std::uint64_t capacity_bytes)
    : name_(std::move(name)), capacity_(capacity_bytes) {}

bool MemoryRegion::allocate(std::uint64_t bytes) noexcept {
  if (!fits(bytes)) return false;
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  return true;
}

void MemoryRegion::release(std::uint64_t bytes) {
  if (bytes > used_) {
    throw std::logic_error("MemoryRegion::release: double free on " + name_);
  }
  used_ -= bytes;
}

}  // namespace nessa::sim
