#include "nessa/sim/component.hpp"

#include <stdexcept>
#include <utility>

#include "nessa/telemetry/telemetry.hpp"

namespace nessa::sim {

Component::Component(Simulator& sim, std::string name,
                     std::size_t queue_capacity)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(queue_capacity),
      bytes_counter_("sim." + name_ + ".bytes"),
      requests_counter_("sim." + name_ + ".requests") {
  if (name_.empty()) {
    throw std::invalid_argument("Component: name must not be empty");
  }
}

bool Component::submit(SimTime service_time, std::uint64_t bytes,
                       const char* phase, Callback done) {
  if (service_time < 0) {
    throw std::invalid_argument("Component::submit: negative service time");
  }
  if (!accepting()) {
    ++stats_.rejected;
    return false;
  }
  queue_.push_back(Request{service_time, bytes, phase, std::move(done),
                           sim_.now()});
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
  if (!in_service_) begin_service();
  return true;
}

void Component::when_accepting(Callback fn) {
  if (!fn) {
    throw std::invalid_argument("Component::when_accepting: null callback");
  }
  if (accepting()) {
    fn();
    return;
  }
  waiters_.push_back(std::move(fn));
}

void Component::begin_service() {
  in_service_ = true;
  service_start_ = sim_.now();
  const Request& req = queue_.front();
  stats_.queue_wait += service_start_ - req.enqueued_at;
  sim_.schedule_after(req.service, [this] { complete(); });
}

void Component::complete() {
  Request req = std::move(queue_.front());
  queue_.pop_front();
  in_service_ = false;

  stats_.busy_time += req.service;
  stats_.bytes += req.bytes;
  ++stats_.completed;
  telemetry::sim_span(req.phase, "component", name_.c_str(), service_start_,
                      req.service);
  telemetry::count(bytes_counter_, req.bytes);
  telemetry::count(requests_counter_);

  if (!queue_.empty()) begin_service();
  // One slot freed: release one waiter (it may immediately re-fill it).
  if (capacity_ != 0 && !waiters_.empty() && accepting()) {
    Callback waiter = std::move(waiters_.front());
    waiters_.pop_front();
    waiter();
  }
  if (req.done) req.done();
}

}  // namespace nessa::sim
