#include "nessa/sim/component.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "nessa/telemetry/telemetry.hpp"

namespace nessa::sim {

Component::Component(Simulator& sim, std::string name,
                     std::size_t queue_capacity)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(queue_capacity),
      bytes_counter_("sim." + name_ + ".bytes"),
      requests_counter_("sim." + name_ + ".requests"),
      failed_counter_("sim." + name_ + ".failed") {
  if (name_.empty()) {
    throw std::invalid_argument("Component: name must not be empty");
  }
}

bool Component::admit(SimTime service_time, std::uint64_t bytes) {
  if (service_time < 0) {
    throw std::invalid_argument("Component::submit: negative service time");
  }
  if (!accepting()) {
    ++stats_.rejected;
    return false;
  }
  if (hook_ != nullptr) [[unlikely]] {
    // admit_faulted only stashes the (empty) fails_ slot for this overload.
    return admit_faulted(service_time, bytes, {});
  }
  return true;
}

bool Component::admit_faulted(SimTime service_time, std::uint64_t bytes,
                              Callback fail) {
  if (hook_->on_submit(*this, service_time, bytes).outcome ==
      FaultDecision::Outcome::kReject) {
    ++stats_.rejected;
    return false;
  }
  // The failure continuation is only stashed while a hook is installed —
  // without one `fail` can never run, so the hot no-fault path keeps a
  // single callback per request. fails_ stays index-parallel with queue_.
  fails_.push_back(std::move(fail));
  return true;
}

bool Component::submit(SimTime service_time, std::uint64_t bytes,
                       const char* phase, Callback done) {
  if (!admit(service_time, bytes)) return false;
  queue_.emplace_back(service_time, bytes, phase, std::move(done), sim_.now());
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
  if (!in_service_) begin_service();
  return true;
}

bool Component::submit(SimTime service_time, std::uint64_t bytes,
                       const char* phase, Callback done, Callback fail) {
  if (service_time < 0) {
    throw std::invalid_argument("Component::submit: negative service time");
  }
  if (!accepting()) {
    ++stats_.rejected;
    return false;
  }
  if (hook_ != nullptr) [[unlikely]] {
    if (!admit_faulted(service_time, bytes, std::move(fail))) return false;
  }
  queue_.emplace_back(service_time, bytes, phase, std::move(done), sim_.now());
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
  if (!in_service_) begin_service();
  return true;
}

void Component::when_accepting(Callback fn) {
  if (!fn) {
    throw std::invalid_argument("Component::when_accepting: null callback");
  }
  if (accepting()) {
    fn();
    return;
  }
  waiters_.push_back(std::move(fn));
}

void Component::set_fault_hook(FaultHook* hook) {
  hook_ = hook;
  if (hook == nullptr) {
    // Dropping the hook forfeits the stashed failure continuations (they
    // can no longer run); an in-flight injected verdict stays valid and is
    // consumed by the pending completion.
    fails_.clear();
    return;
  }
  if (fails_.size() < queue_.size()) {
    // Requests queued before the hook was installed carry no failure
    // continuation; pad so fails_ stays index-parallel with queue_. The
    // request already in service now owns a padded slot too, so its
    // completion must consume it — mark it faulted with a clean verdict.
    fails_.resize_up(queue_.size());
    if (in_service_ && !in_service_faulted_) {
      in_service_faulted_ = true;
      in_service_failed_ = false;
      injected_delta_ = 0;
    }
  }
}

void Component::begin_service() {
  in_service_ = true;
  service_start_ = sim_.now();
  const Request& req = queue_.front();
  stats_.queue_wait += service_start_ - req.enqueued_at;
  SimTime service = req.service;
  if (hook_ != nullptr) [[unlikely]] service = service_faulted(req);
  service_event_ = sim_.schedule_after(service, [this] { complete(); });
}

void Component::fail_stop() {
  if (down_) return;
  down_ = true;
  down_since_ = sim_.now();
  // Collect every continuation before invoking any: a continuation may
  // re-enter submit()/when_accepting() and must observe a consistent
  // (empty, down) queue, not a half-drained one.
  std::vector<Callback> continuations;
  continuations.reserve(queue_.size());
  if (in_service_) {
    sim_.cancel(service_event_);
    in_service_ = false;
    in_service_faulted_ = false;
    in_service_failed_ = false;
    injected_delta_ = 0;
    // The partial service the device delivered before dying is real busy
    // time; the request itself fails (bytes never arrived).
    stats_.busy_time += sim_.now() - service_start_;
  }
  while (!queue_.empty()) {
    Request req = std::move(queue_.front());
    queue_.pop_front();
    Callback fail;
    if (!fails_.empty()) {
      fail = std::move(fails_.front());
      fails_.pop_front();
    }
    ++stats_.failed;
    ++stats_.drained;
    telemetry::count(failed_counter_);
    continuations.push_back(fail ? std::move(fail) : std::move(req.done));
  }
  // when_accepting() waiters stay parked across the outage: they asked for
  // a free slot, and a dead component has none. restore() releases them.
  for (Callback& cont : continuations) {
    if (cont) cont();
  }
}

void Component::restore() {
  if (!down_) return;
  down_ = false;
  stats_.down_time += sim_.now() - down_since_;
  // The queue is empty (fail_stop drained it), so every parked waiter can
  // be offered the free capacity in FIFO order — same discipline as the
  // completion path, minus the capacity guard (waiters can park on an
  // unbounded component only while it is down).
  while (!waiters_.empty() && accepting()) {
    Callback waiter = std::move(waiters_.front());
    waiters_.pop_front();
    waiter();
  }
}

SimTime Component::service_faulted(const Request& req) {
  const FaultDecision d = hook_->on_service(*this, req.service, req.bytes);
  SimTime service = req.service;
  if (d.service_delta > 0) service += d.service_delta;
  in_service_faulted_ = true;
  in_service_failed_ = d.outcome == FaultDecision::Outcome::kFail;
  injected_delta_ = service - req.service;
  return service;
}

void Component::complete() {
  Request req = std::move(queue_.front());
  queue_.pop_front();
  in_service_ = false;
  if (in_service_faulted_) [[unlikely]] {
    complete_faulted(std::move(req));
    return;
  }

  // Fast path: this request never saw a hook — no injected verdict to
  // consume, no fails_ slot to keep aligned.
  stats_.busy_time += req.service;
  telemetry::sim_span(req.phase, "component", name_.c_str(), service_start_,
                      req.service);
  stats_.bytes += req.bytes;
  ++stats_.completed;
  telemetry::count(bytes_counter_, req.bytes);
  telemetry::count(requests_counter_);

  if (!queue_.empty()) begin_service();
  // One slot freed: release waiters in FIFO order until one re-fills the
  // queue (the common case releases exactly one). A waiter that declines
  // its slot must not strand the ones behind it — the slot is still free,
  // so the next waiter gets it.
  while (capacity_ != 0 && !waiters_.empty() && accepting()) {
    Callback waiter = std::move(waiters_.front());
    waiters_.pop_front();
    waiter();
  }
  if (req.done) req.done();
}

void Component::complete_faulted(Request req) {
  in_service_faulted_ = false;
  const SimTime served = req.service + injected_delta_;
  const bool failed = in_service_failed_;
  injected_delta_ = 0;
  in_service_failed_ = false;
  Callback fail;
  if (!fails_.empty()) {
    fail = std::move(fails_.front());
    fails_.pop_front();
  }

  stats_.busy_time += served;
  telemetry::sim_span(req.phase, "component", name_.c_str(), service_start_,
                      served);
  if (failed) {
    ++stats_.failed;
    telemetry::count(failed_counter_);
  } else {
    stats_.bytes += req.bytes;
    ++stats_.completed;
    telemetry::count(bytes_counter_, req.bytes);
    telemetry::count(requests_counter_);
  }

  if (!queue_.empty()) begin_service();
  while (capacity_ != 0 && !waiters_.empty() && accepting()) {
    Callback waiter = std::move(waiters_.front());
    waiters_.pop_front();
    waiter();
  }
  if (failed && fail) {
    fail();
  } else if (req.done) {
    req.done();
  }
}

}  // namespace nessa::sim
