// Fixed-size thread pool with a parallel_for helper. Used by the tensor
// matmul and by per-class selection fan-out. Kept intentionally simple: one
// shared queue, no work stealing — parallel sections in NeSSA are coarse.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nessa::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Work is split into contiguous chunks, one per worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Global pool shared by the library (lazy-initialized, never destroyed
  /// before exit).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace nessa::util
