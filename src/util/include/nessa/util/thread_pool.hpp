// Fixed-size thread pool with parallel-for helpers. Used by the tensor
// matmul, the selection engine's gain reductions, and per-class selection
// fan-out. One shared queue, no work stealing — parallel sections in NeSSA
// are coarse.
//
// Two dispatch paths:
//  - submit(): one task, one std::future. Fine for coarse fan-out.
//  - parallel_for_chunked(): contiguous [lo, hi) ranges handed out via a
//    shared atomic chunk counter and a completion latch — no per-chunk
//    packaged_task/future allocation, and the calling thread participates,
//    so it is safe (and cheap) for fine-grained inner loops.
//
// Nested parallel sections run inline: a worker that itself calls
// parallel_for/parallel_for_chunked executes the whole range on its own
// thread. The chunk decomposition is identical on the inline and threaded
// paths, so chunk-indexed reductions are deterministic either way.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nessa::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Work is split into contiguous chunks, one per worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(lo, hi) over [begin, end) split into ceil((end-begin)/grain)
  /// contiguous chunks, blocking until all chunks complete. Chunks are
  /// claimed dynamically from a shared atomic counter (the caller claims
  /// chunks too), so large ranges load-balance across more chunks than
  /// threads without a heap allocation per chunk. The chunk boundaries
  /// depend only on (begin, end, grain) — never on the pool size or on
  /// which thread runs a chunk — so callers may index per-chunk result
  /// slots by (lo - begin) / grain and combine them in chunk order for a
  /// bit-deterministic reduction.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// True when called from inside a pool-dispatched task; nested parallel
  /// sections use this to degrade to inline execution.
  [[nodiscard]] static bool in_parallel_region() noexcept;

  /// Global pool shared by the library (lazy-initialized, never destroyed
  /// before exit). Size is hardware_concurrency unless the NESSA_THREADS
  /// environment variable overrides it at first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace nessa::util
