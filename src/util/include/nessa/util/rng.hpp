// Deterministic, fast pseudo-random number generation for NeSSA.
//
// All stochastic components of the library (dataset synthesis, stochastic
// greedy sampling, SGD shuffling, dropout) draw from Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256**, seeded via splitmix64 so that nearby seeds give independent
// streams.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace nessa::util {

/// splitmix64 step: used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
/// can be plugged into <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    gaussian_cached_ = false;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_int(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() noexcept {
    if (gaussian_cached_) {
      gaussian_cached_ = false;
      return gaussian_spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    gaussian_spare_ = v * mul;
    gaussian_cached_ = true;
    return u * mul;
  }

  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = uniform_int(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  /// Uses Floyd's algorithm when k << n, full shuffle otherwise.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Fork an independent stream (e.g. one per worker thread / per class).
  Rng fork() noexcept { return Rng((*this)()); }

  /// The complete generator state (xoshiro words + cached gaussian pair),
  /// for checkpoint/restore. Round-tripping through set_state() resumes the
  /// stream bit-identically.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double gaussian_spare = 0.0;
    bool gaussian_cached = false;

    friend bool operator==(const State&, const State&) = default;
  };

  [[nodiscard]] State state() const noexcept {
    return State{state_, gaussian_spare_, gaussian_cached_};
  }

  void set_state(const State& s) noexcept {
    state_ = s.words;
    gaussian_spare_ = s.gaussian_spare;
    gaussian_cached_ = s.gaussian_cached;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double gaussian_spare_ = 0.0;
  bool gaussian_cached_ = false;
};

inline std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                                std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k * 3 < n) {
    // Floyd's algorithm: O(k) expected, O(k) memory.
    std::vector<std::size_t> chosen;
    chosen.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
      std::size_t t = uniform_int(j + 1);
      bool dup = false;
      for (std::size_t c : chosen) {
        if (c == t) {
          dup = true;
          break;
        }
      }
      chosen.push_back(dup ? j : t);
    }
    return chosen;
  }
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  shuffle(all);
  all.resize(k);
  return all;
}

}  // namespace nessa::util
