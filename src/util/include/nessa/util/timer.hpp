// Wall-clock stopwatch for host-side timing (selection kernels, training
// loops). Simulated time lives in nessa::sim; this is only for measuring the
// process itself.
#pragma once

#include <chrono>

namespace nessa::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nessa::util
