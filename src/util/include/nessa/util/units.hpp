// Units used by the storage simulator: simulated time is kept in integer
// picoseconds (wide enough for hours of simulated time in int64), sizes in
// bytes, bandwidths in bytes/second. Helper constants and conversions keep
// the arithmetic honest at call sites.
#pragma once

#include <cstdint>

namespace nessa::util {

/// Simulated time in picoseconds. Signed to allow deltas.
using SimTime = std::int64_t;

inline constexpr SimTime kPicosecond = 1;
inline constexpr SimTime kNanosecond = 1'000;
inline constexpr SimTime kMicrosecond = 1'000'000;
inline constexpr SimTime kMillisecond = 1'000'000'000;
inline constexpr SimTime kSecond = 1'000'000'000'000;

inline constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
inline constexpr double to_ms(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
inline constexpr double to_us(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
inline constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Sizes in bytes.
inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;
inline constexpr std::uint64_t kKB = 1000ULL;
inline constexpr std::uint64_t kMB = 1000ULL * kKB;
inline constexpr std::uint64_t kGB = 1000ULL * kMB;

/// Bandwidth in bytes per second -> time to move `bytes`.
inline constexpr SimTime transfer_time(std::uint64_t bytes,
                                       double bytes_per_second) noexcept {
  if (bytes_per_second <= 0.0) return 0;
  return static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_second *
                              static_cast<double>(kSecond));
}

/// bytes / seconds -> GB/s (decimal GB, as storage vendors quote).
inline constexpr double gbps(std::uint64_t bytes, double seconds) noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / seconds / 1e9;
}

}  // namespace nessa::util
