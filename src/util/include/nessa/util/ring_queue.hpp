// RingQueue: a power-of-two circular FIFO that never allocates in steady
// state.
//
// std::deque cycles through its 512-byte blocks as elements flow front to
// back, so a long-lived FIFO (a component request queue under fleet-scale
// traffic) hits the global allocator every few pushes. RingQueue keeps one
// flat buffer, doubles it on overflow (amortized, and only until the queue
// has seen its high-water mark), and otherwise performs zero allocations.
// Elements need only be move-constructible.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace nessa::util {

template <typename T>
class RingQueue {
 public:
  RingQueue() noexcept = default;

  RingQueue(RingQueue&& other) noexcept
      : buf_(other.buf_), cap_(other.cap_), head_(other.head_),
        size_(other.size_) {
    other.buf_ = nullptr;
    other.cap_ = other.head_ = other.size_ = 0;
  }

  RingQueue& operator=(RingQueue&& other) noexcept {
    if (this != &other) {
      destroy();
      buf_ = other.buf_;
      cap_ = other.cap_;
      head_ = other.head_;
      size_ = other.size_;
      other.buf_ = nullptr;
      other.cap_ = other.head_ = other.size_ = 0;
    }
    return *this;
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  ~RingQueue() { destroy(); }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] T& front() noexcept { return slot(head_); }
  [[nodiscard]] const T& front() const noexcept { return slot(head_); }
  [[nodiscard]] T& back() noexcept { return slot(head_ + size_ - 1); }
  [[nodiscard]] const T& back() const noexcept {
    return slot(head_ + size_ - 1);
  }
  /// Element `i` positions behind the front (0 == front).
  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    return slot(head_ + i);
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return slot(head_ + i);
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* p = ::new (static_cast<void*>(&slot_raw(head_ + size_)))
        T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void push_back(T value) { emplace_back(std::move(value)); }

  void pop_front() noexcept {
    slot(head_).~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  /// Default-construct elements at the back until `size() == n` (n must be
  /// >= size()). Mirrors the deque::resize use in fault padding.
  void resize_up(std::size_t n) {
    while (size_ < n) emplace_back();
  }

  void clear() noexcept {
    while (size_ != 0) pop_front();
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    T* nb = static_cast<T*>(::operator new(new_cap * sizeof(T),
                                           std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(nb + i)) T(std::move(slot(head_ + i)));
      slot(head_ + i).~T();
    }
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t{alignof(T)});
    }
    buf_ = nb;
    cap_ = new_cap;
    head_ = 0;
  }

  void destroy() noexcept {
    clear();
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t{alignof(T)});
      buf_ = nullptr;
      cap_ = 0;
    }
  }

  [[nodiscard]] T& slot(std::size_t i) noexcept {
    return buf_[i & (cap_ - 1)];
  }
  [[nodiscard]] const T& slot(std::size_t i) const noexcept {
    return buf_[i & (cap_ - 1)];
  }
  [[nodiscard]] T& slot_raw(std::size_t i) noexcept {
    return buf_[i & (cap_ - 1)];
  }

  T* buf_ = nullptr;
  std::size_t cap_ = 0;   ///< always zero or a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nessa::util
