// Plain-text table and CSV emitters. Every benchmark binary prints the rows
// of the paper table/figure it reproduces through one of these, so output is
// uniform and machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nessa::util {

/// Column-aligned ASCII table with an optional title, printed to a stream.
/// Cells are strings; helpers format numeric cells with fixed precision.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Format a double with `precision` digits after the decimal point.
  static std::string num(double value, int precision = 2);
  /// Format an integer-valued count.
  static std::string num(std::size_t value);
  /// Format a ratio as a percentage string, e.g. 0.2814 -> "28.14".
  static std::string pct(double fraction, int precision = 2);

  void print(std::ostream& os) const;

  /// Emit as CSV (header + rows, comma-separated, no alignment padding).
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nessa::util
