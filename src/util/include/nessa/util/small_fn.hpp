// SmallFn: a lean, move-only replacement for std::function<void()> on the
// simulation hot paths.
//
// Every simulator event and every component request carries one completion
// callback. std::function's small-object buffer on the common ABIs holds
// only two pointers, so the moment a callback captures (this, epoch, retry
// state) it heap-allocates — one malloc/free pair per event at fleet scale.
// SmallFn widens the inline buffer to kInlineBytes (every callback in this
// codebase fits) and dispatches through a single function pointer, so
// invoking costs one indirect call and storing costs zero allocations.
//
// Oversized or throwing-move callables still work: they fall back to one
// heap allocation, exactly like std::function. SmallFn is move-only; call
// sites that used to copy a std::function instead construct a fresh SmallFn
// from the callable (the callable itself is copied, not the wrapper).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nessa::util {

class SmallFn {
 public:
  /// Inline capture budget. 40 bytes holds a std::function (32 on the
  /// common ABIs), a shared_ptr-carrying retry lambda (16), or five raw
  /// words of captures; anything bigger degrades to one heap allocation.
  static constexpr std::size_t kInlineBytes = 40;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Destroy the current target (if any) and hold `f` in its place.
  template <typename F>
  void emplace(F&& f) {
    using D = std::remove_cvref_t<F>;
    reset();
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      // Trivial captures (the overwhelmingly common case on the simulator
      // hot path: a couple of pointers/ints) need no manager at all —
      // moving is a memcpy and destroying is forgetting. Saves an indirect
      // call on every event release.
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      manage_ = nullptr;
    } else if constexpr (sizeof(D) <= kInlineBytes &&
                         alignof(D) <= alignof(std::max_align_t) &&
                         std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      manage_ = [](Op op, void* dst, void* src) {
        switch (op) {
          case Op::kMove:
            ::new (dst) D(std::move(*static_cast<D*>(src)));
            static_cast<D*>(src)->~D();
            break;
          case Op::kDestroy:
            static_cast<D*>(dst)->~D();
            break;
        }
      };
    } else {
      // Heap fallback: the buffer holds a single owning pointer.
      ::new (static_cast<void*>(buf_))
          D*(new D(std::forward<F>(f)));
      invoke_ = [](void* p) { (**static_cast<D**>(p))(); };
      manage_ = [](Op op, void* dst, void* src) {
        switch (op) {
          case Op::kMove:
            ::new (dst) D*(*static_cast<D**>(src));
            break;
          case Op::kDestroy:
            delete *static_cast<D**>(dst);
            break;
        }
      };
    }
  }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  void operator()() { invoke_(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  friend bool operator==(const SmallFn& f, std::nullptr_t) noexcept {
    return !f;
  }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) noexcept {
    return static_cast<bool>(f);
  }

 private:
  enum class Op { kMove, kDestroy };
  using Invoke = void (*)(void*);
  using Manage = void (*)(Op, void* dst, void* src);

  void steal(SmallFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(Op::kMove, buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      }
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace nessa::util
