// Deterministic chunked reductions over [0, n).
//
// The range is cut into fixed blocks of `grain` elements; `block(lo, hi)`
// produces one partial per block and the partials are combined strictly in
// block order. Because the block boundaries depend only on (n, grain) and
// every block is evaluated by exactly one thread, the result is
// bit-identical whether the blocks run serially, on the global pool, or on
// pools of different sizes. This is the primitive that lets the parallel
// selection engine promise "same bits as serial".
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "nessa/util/thread_pool.hpp"

namespace nessa::util {

template <typename T, typename BlockFn, typename CombineFn>
T chunked_reduce(std::size_t n, std::size_t grain, bool parallel, T init,
                 BlockFn&& block, CombineFn&& combine) {
  if (n == 0) return init;
  if (grain == 0) grain = 1;
  const std::size_t nblocks = (n + grain - 1) / grain;
  if (nblocks == 1) return combine(std::move(init), block(0, n));

  std::vector<T> partials(nblocks, init);
  auto& pool = ThreadPool::global();
  const auto run = [&](std::size_t lo, std::size_t hi) {
    partials[lo / grain] = block(lo, hi);
  };
  if (parallel && pool.size() > 1 && !ThreadPool::in_parallel_region()) {
    pool.parallel_for_chunked(0, n, grain, run);
  } else {
    for (std::size_t lo = 0; lo < n; lo += grain) {
      run(lo, std::min(n, lo + grain));
    }
  }
  T acc = std::move(init);
  for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

/// Argmax candidate for deterministic parallel greedy: larger gain wins,
/// ties break toward the smaller index (matching an ascending serial scan).
struct BestGain {
  double gain = -1.0;
  std::size_t index = static_cast<std::size_t>(-1);
};

inline BestGain better_gain(BestGain a, BestGain b) noexcept {
  if (b.gain > a.gain || (b.gain == a.gain && b.index < a.index)) return b;
  return a;
}

}  // namespace nessa::util
