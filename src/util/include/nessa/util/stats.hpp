// Streaming statistics accumulators used throughout the benchmarks and the
// simulator (throughput summaries, accuracy curves, loss histories).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace nessa::util {

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponential moving average; used for loss-reduction-rate tracking in the
/// dynamic subset-sizing controller.
class Ema {
 public:
  explicit Ema(double alpha = 0.1) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
  }

  [[nodiscard]] bool seeded() const noexcept { return seeded_; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Fixed-capacity sliding window over recent observations; used for the
/// "losses from the most recent five epochs" record in subset biasing.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {}

  void add(double x) {
    if (buf_.size() == capacity_) {
      buf_[head_] = x;
      head_ = (head_ + 1) % capacity_;
    } else {
      buf_.push_back(x);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] bool full() const noexcept { return buf_.size() == capacity_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double max() const noexcept;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::vector<double> buf_;
};

/// Percentile of a sample (linear interpolation). p in [0, 100].
double percentile(std::span<const double> sorted_values, double p) noexcept;

/// In-place sort + percentile convenience.
double percentile_of(std::vector<double> values, double p);

/// Arithmetic mean of a span (0 for empty).
double mean_of(std::span<const double> values) noexcept;

}  // namespace nessa::util
