// The library-wide parallelism knob.
//
// Before this struct existed, each layer had its own spelling: a bool
// `parallel` on FacilityLocation / the greedy maximizers / DriverConfig,
// a `threads` count on ThreadPool, and the NESSA_THREADS environment
// variable on the global pool. Parallelism unifies them: every public knob
// is now this struct, and the bool call sites keep compiling through the
// implicit conversions below.
//
// `threads` is advisory: the shared global pool (ThreadPool::global()) is
// sized once at first use from hardware_concurrency / NESSA_THREADS, and
// the deterministic chunked reductions are thread-count-independent by
// construction, so a per-call thread count would buy nothing but pool
// churn. A non-zero value documents intent and is validated (see
// core::RunConfig::validate()), and sizes any pool the caller constructs
// explicitly.
#pragma once

#include <cstddef>

namespace nessa::util {

struct Parallelism {
  /// Dispatch parallel sections onto the global thread pool.
  bool enabled = false;
  /// Preferred worker count; 0 = the global pool's size (hardware
  /// concurrency, overridable via NESSA_THREADS).
  std::size_t threads = 0;

  constexpr Parallelism() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): bool knobs migrate in place.
  constexpr Parallelism(bool enable) noexcept : enabled(enable) {}

  [[nodiscard]] static constexpr Parallelism serial() noexcept {
    return Parallelism{false};
  }
  [[nodiscard]] static constexpr Parallelism pooled(
      std::size_t threads = 0) noexcept {
    Parallelism p{true};
    p.threads = threads;
    return p;
  }

  // NOLINTNEXTLINE(google-explicit-constructor): `if (cfg.parallelism)` reads
  // as "is parallel dispatch on", matching the old bool semantics.
  [[nodiscard]] constexpr operator bool() const noexcept { return enabled; }
};

}  // namespace nessa::util
