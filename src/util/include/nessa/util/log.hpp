// Minimal leveled logger. Benchmarks run with Info; tests default to Warn so
// ctest output stays readable. Not thread-safe across interleaved messages by
// design (each call writes one formatted line atomically via a local buffer).
#pragma once

#include <sstream>
#include <string>

namespace nessa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Write one line at `level` (tag + message) to stderr if enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace nessa::util
