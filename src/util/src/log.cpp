#include "nessa/util/log.hpp"

#include <atomic>
#include <cstdio>

namespace nessa::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[nessa %s] %s\n", tag(level), message.c_str());
}

}  // namespace nessa::util
