#include "nessa/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <latch>
#include <memory>

namespace nessa::util {

namespace {

thread_local bool tl_in_parallel_region = false;

/// RAII flag so nested parallel sections degrade to inline execution.
struct ParallelRegionGuard {
  bool saved = tl_in_parallel_region;
  ParallelRegionGuard() { tl_in_parallel_region = true; }
  ~ParallelRegionGuard() { tl_in_parallel_region = saved; }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // std::function must be copyable, so the move-only packaged_task rides in
  // a shared_ptr.
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  auto future = packaged->get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t grain =
      std::max<std::size_t>(1, (n + workers_.size() - 1) / workers_.size());
  parallel_for_chunked(begin, end, grain,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t nchunks = (n + grain - 1) / grain;
  if (nchunks <= 1 || workers_.size() <= 1 || tl_in_parallel_region) {
    // Inline path still walks chunk by chunk so chunk-indexed callers see
    // the same decomposition as the threaded path.
    for (std::size_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  struct Control {
    explicit Control(std::ptrdiff_t chunks) : done(chunks) {}
    std::atomic<std::size_t> next{0};
    std::latch done;
    std::size_t begin = 0, end = 0, grain = 1, nchunks = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  };
  auto ctl = std::make_shared<Control>(static_cast<std::ptrdiff_t>(nchunks));
  ctl->begin = begin;
  ctl->end = end;
  ctl->grain = grain;
  ctl->nchunks = nchunks;
  ctl->fn = &fn;

  // Helpers drain chunks from the shared counter. `fn` stays alive until
  // the latch releases the caller, and a helper only dereferences it after
  // claiming a chunk — which implies the latch has not released yet.
  auto work = [ctl] {
    ParallelRegionGuard guard;
    for (;;) {
      const std::size_t c = ctl->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= ctl->nchunks) return;
      const std::size_t lo = ctl->begin + c * ctl->grain;
      const std::size_t hi = std::min(ctl->end, lo + ctl->grain);
      (*ctl->fn)(lo, hi);
      ctl->done.count_down();
    }
  };

  const std::size_t helpers = std::min(workers_.size() - 1, nchunks - 1);
  {
    std::lock_guard lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) tasks_.push(work);
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
  work();  // the caller claims chunks too
  ctl->done.wait();
}

bool ThreadPool::in_parallel_region() noexcept { return tl_in_parallel_region; }

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("NESSA_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace nessa::util
