#include "nessa/util/thread_pool.hpp"

#include <algorithm>

namespace nessa::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace nessa::util
