#include "nessa/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace nessa::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::num(std::size_t value) { return std::to_string(value); }

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision);
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::size_t cols = header.size();
  for (const auto& r : rows) cols = std::max(cols, r.size());
  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < header.size(); ++c)
    widths[c] = std::max(widths[c], header[c].size());
  for (const auto& r : rows)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());
  return widths;
}

void print_row(std::ostream& os, const std::vector<std::string>& cells,
               const std::vector<std::size_t>& widths) {
  os << "| ";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string{};
    os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
    os << (c + 1 < widths.size() ? " | " : " |");
  }
  os << '\n';
}

}  // namespace

void Table::print(std::ostream& os) const {
  const auto widths = column_widths(header_, rows_);
  std::size_t total = 4;  // "| " + " |"
  for (std::size_t w : widths) total += w + 3;
  if (!title_.empty()) os << title_ << '\n';
  const std::string rule(total > 3 ? total - 3 : total, '-');
  if (!header_.empty()) {
    print_row(os, header_, widths);
    os << rule << '\n';
  }
  for (const auto& r : rows_) print_row(os, r, widths);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace nessa::util
