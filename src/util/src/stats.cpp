#include "nessa/util/stats.hpp"

#include <cmath>
#include <limits>

namespace nessa::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double SlidingWindow::mean() const noexcept {
  if (buf_.empty()) return 0.0;
  double s = 0.0;
  for (double x : buf_) s += x;
  return s / static_cast<double>(buf_.size());
}

double SlidingWindow::max() const noexcept {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : buf_) m = std::max(m, x);
  return buf_.empty() ? 0.0 : m;
}

double percentile(std::span<const double> sorted_values, double p) noexcept {
  if (sorted_values.empty()) return 0.0;
  if (sorted_values.size() == 1) return sorted_values[0];
  p = std::clamp(p, 0.0, 100.0);
  const double rank =
      p / 100.0 * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_values.size()) return sorted_values.back();
  return sorted_values[lo] + frac * (sorted_values[lo + 1] - sorted_values[lo]);
}

double percentile_of(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile(values, p);
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double x : values) s += x;
  return s / static_cast<double>(values.size());
}

}  // namespace nessa::util
