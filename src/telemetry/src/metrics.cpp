#include "nessa/telemetry/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nessa::telemetry {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// Doubles formatted so the output is valid JSON (no inf/nan) and
/// round-trips typical byte counts and second-scale durations.
void write_double(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(15);
  tmp << v;
  const std::string text = tmp.str();
  if (text.find("inf") != std::string::npos ||
      text.find("nan") != std::string::npos) {
    os << "null";
  } else {
    os << text;
  }
}

}  // namespace

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (data_.count == 0) {
    data_.min = v;
    data_.max = v;
  } else {
    data_.min = std::min(data_.min, v);
    data_.max = std::max(data_.max, v);
  }
  ++data_.count;
  data_.sum += v;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    ";
    write_escaped(os, name);
    os << ": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    ";
    write_escaped(os, name);
    os << ": ";
    write_double(os, g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    os << (first ? "\n" : ",\n") << "    ";
    write_escaped(os, name);
    os << ": {\"count\": " << s.count << ", \"sum\": ";
    write_double(os, s.sum);
    os << ", \"min\": ";
    write_double(os, s.min);
    os << ", \"max\": ";
    write_double(os, s.max);
    os << ", \"mean\": ";
    write_double(os, s.mean());
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("MetricsRegistry: cannot write " + path);
  }
  write_json(os);
}

}  // namespace nessa::telemetry
