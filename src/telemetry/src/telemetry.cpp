#include "nessa/telemetry/telemetry.hpp"

#include <atomic>

namespace nessa::telemetry {

namespace {

std::atomic<TraceRecorder*> g_trace{nullptr};
std::atomic<MetricsRegistry*> g_metrics{nullptr};

}  // namespace

TraceRecorder* trace() noexcept {
  return g_trace.load(std::memory_order_relaxed);
}

MetricsRegistry* metrics() noexcept {
  return g_metrics.load(std::memory_order_relaxed);
}

void install(TraceRecorder* trace_sink,
             MetricsRegistry* metrics_sink) noexcept {
  g_trace.store(trace_sink, std::memory_order_relaxed);
  g_metrics.store(metrics_sink, std::memory_order_relaxed);
}

void uninstall() noexcept { install(nullptr, nullptr); }

Session::Session()
    : trace_(std::make_unique<TraceRecorder>()),
      metrics_(std::make_unique<MetricsRegistry>()) {
  install(trace_.get(), metrics_.get());
}

Session::~Session() {
  // Only tear down the globals if they still point at this session.
  if (telemetry::trace() == trace_.get() ||
      telemetry::metrics() == metrics_.get()) {
    uninstall();
  }
}

}  // namespace nessa::telemetry
