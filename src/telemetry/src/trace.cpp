#include "nessa/telemetry/trace.hpp"

#include <atomic>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace nessa::telemetry {

namespace {

/// Chrome trace JSON string escaping (names come from code, but link names
/// are user-configurable strings).
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Timestamps in the chrome format are microseconds; emit with sub-us
/// precision (wall events are ns, sim events are ps).
double to_us(Domain domain, std::int64_t t) {
  return domain == Domain::kWall ? static_cast<double>(t) / 1e3
                                 : static_cast<double>(t) / 1e6;
}

constexpr int pid_of(Domain domain) {
  return domain == Domain::kWall ? 1 : 2;
}

}  // namespace

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::span(Domain domain, std::string name, std::string category,
                         std::string track, std::int64_t start,
                         std::int64_t duration) {
  record(TraceEvent{std::move(name), std::move(category), std::move(track),
                    domain, start, duration, /*instant=*/false});
}

void TraceRecorder::instant(Domain domain, std::string name,
                            std::string category, std::string track,
                            std::int64_t at) {
  record(TraceEvent{std::move(name), std::move(category), std::move(track),
                    domain, at, 0, /*instant=*/true});
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> snapshot = events();

  // Assign a small integer tid to each (domain, track) lane, in first-seen
  // order, and name the lanes via metadata events.
  std::map<std::pair<int, std::string>, int> tids;
  for (const auto& ev : snapshot) {
    tids.try_emplace({pid_of(ev.domain), ev.track},
                     static_cast<int>(tids.size()));
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  for (const int pid : {1, 2}) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":"
       << (pid == 1 ? "\"wall-clock\"" : "\"sim-clock\"") << "}}";
  }
  for (const auto& [key, tid] : tids) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << tid << ",\"args\":{\"name\":";
    write_escaped(os, key.second);
    os << "}}";
  }

  for (const auto& ev : snapshot) {
    const int pid = pid_of(ev.domain);
    const int tid = tids.at({pid, ev.track});
    sep();
    os << "{\"name\":";
    write_escaped(os, ev.name);
    os << ",\"cat\":";
    write_escaped(os, ev.category);
    os << ",\"ph\":\"" << (ev.instant ? 'i' : 'X') << "\"";
    os << ",\"ts\":" << to_us(ev.domain, ev.start);
    if (ev.instant) {
      os << ",\"s\":\"t\"";
    } else {
      os << ",\"dur\":" << to_us(ev.domain, ev.duration);
    }
    os << ",\"pid\":" << pid << ",\"tid\":" << tid << "}";
  }
  os << "\n]}\n";
}

void TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("TraceRecorder: cannot write " + path);
  }
  write_chrome_trace(os);
}

const std::string& TraceRecorder::thread_track() {
  static std::atomic<int> next{0};
  thread_local const std::string track =
      "t" + std::to_string(next.fetch_add(1, std::memory_order_relaxed));
  return track;
}

}  // namespace nessa::telemetry
