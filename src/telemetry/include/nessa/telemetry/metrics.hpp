// Named counters, gauges, and histograms for the telemetry layer.
//
// A MetricsRegistry hands out references to metric objects keyed by name;
// the references stay valid for the registry's lifetime, so hot loops can
// resolve a metric once and update it lock-free afterwards (counters and
// gauges are single atomics; histograms take a small per-histogram lock).
//
// Naming convention (dot-separated, coarse to fine):
//   <subsystem>.<object>.<quantity>[.<unit>]
//   e.g. "pipeline.host_link.bytes", "selection.greedy.gain_evaluations",
//        "sim.engine.events". Byte-moved counters always end in ".bytes".
//
// write_json() dumps everything as one flat JSON object:
//   { "counters": {name: value}, "gauges": {...},
//     "histograms": {name: {count, sum, min, max, mean}} }
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace nessa::telemetry {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    [[nodiscard]] double mean() const noexcept {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  void record(double v);
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  Snapshot data_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the returned reference is stable for the registry's
  /// lifetime and safe to update concurrently.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Read a counter without creating it; 0 if absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Snapshot of every counter (name -> value), for tests and reports.
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const;

  void write_json(std::ostream& os) const;

  /// Throws std::runtime_error if the file cannot be opened.
  void write_json_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace nessa::telemetry
