// Timestamped span/instant recording for the telemetry layer.
//
// A TraceRecorder collects events from two clock domains:
//  - kWall: wall-clock nanoseconds since the recorder's construction,
//    measured on std::chrono::steady_clock — used by the selection engine,
//    the trainers, and anything else that runs for real on the host;
//  - kSim:  simulated picoseconds (util::SimTime) — used by the
//    discrete-event/analytic models in nessa::sim and nessa::smartssd.
//
// Every event carries a `track` (a lane in the viewer): wall events default
// to a per-thread track, sim events use the modeled resource's name
// ("flash_bus", "fpga", "host_link", ...). write_chrome_trace() emits the
// Chrome trace-event JSON format, loadable in chrome://tracing or Perfetto;
// the two clock domains are exported as two separate "processes" so their
// unrelated time axes are never visually conflated.
//
// Thread safety: record/span/instant may be called concurrently from any
// thread (one mutex around the event vector; events are coarse — pipeline
// phases, selection rounds — so contention is negligible).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "nessa/util/units.hpp"

namespace nessa::telemetry {

enum class Domain : std::uint8_t {
  kWall,  ///< nanoseconds of real time since the recorder's epoch
  kSim,   ///< simulated picoseconds (util::SimTime)
};

struct TraceEvent {
  std::string name;
  std::string category;
  std::string track;  ///< viewer lane: thread for wall, resource for sim
  Domain domain = Domain::kWall;
  std::int64_t start = 0;     ///< kWall: ns since epoch; kSim: SimTime (ps)
  std::int64_t duration = 0;  ///< same unit as start; 0 for instants
  bool instant = false;
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Wall-clock nanoseconds since this recorder was constructed.
  [[nodiscard]] std::int64_t now_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void record(TraceEvent event);

  void span(Domain domain, std::string name, std::string category,
            std::string track, std::int64_t start, std::int64_t duration);

  void instant(Domain domain, std::string name, std::string category,
               std::string track, std::int64_t at);

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Snapshot of all events recorded so far (copied under the lock).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON ("traceEvents" array of complete/instant
  /// events plus process/thread-name metadata). Timestamps are emitted in
  /// microseconds as the format requires.
  void write_chrome_trace(std::ostream& os) const;

  /// Throws std::runtime_error if the file cannot be opened.
  void write_chrome_trace_file(const std::string& path) const;

  /// Stable per-thread track name ("t0", "t1", ... in first-use order).
  [[nodiscard]] static const std::string& thread_track();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII wall-clock span: records [construction, destruction) into the given
/// recorder on the current thread's track. A null recorder makes every
/// operation a no-op, so call sites can pass the (possibly disabled) global
/// sink unconditionally.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* name, const char* category)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      name_ = name;
      category_ = category;
      start_ = recorder_->now_ns();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : recorder_(other.recorder_),
        name_(std::move(other.name_)),
        category_(std::move(other.category_)),
        start_(other.start_) {
    other.recorder_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->span(Domain::kWall, std::move(name_), std::move(category_),
                      TraceRecorder::thread_track(), start_,
                      recorder_->now_ns() - start_);
    }
  }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  std::int64_t start_ = 0;
};

}  // namespace nessa::telemetry
