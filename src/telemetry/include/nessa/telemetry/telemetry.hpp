// Global telemetry sinks and the null-sink fast path.
//
// The library is instrumented unconditionally, but the sinks default to
// nullptr: every helper below starts with one relaxed atomic load and a
// branch, so a run with telemetry disabled pays a couple of instructions
// per *phase* (never per inner-loop element) — the contract the selection
// benchmarks hold the layer to (see docs/telemetry.md).
//
// Enable by installing sinks, most conveniently with a Session:
//
//   telemetry::Session session;                  // installs on construction
//   ... run a workload ...
//   session.trace().write_chrome_trace_file("trace.json");
//   session.metrics().write_json_file("metrics.json");
//   // ~Session uninstalls
//
// Only one set of sinks can be installed at a time (last install wins);
// instrumented code never takes ownership.
#pragma once

#include <memory>
#include <string_view>

#include "nessa/telemetry/metrics.hpp"
#include "nessa/telemetry/trace.hpp"
#include "nessa/util/units.hpp"

namespace nessa::telemetry {

/// Currently installed sinks; nullptr when telemetry is disabled.
[[nodiscard]] TraceRecorder* trace() noexcept;
[[nodiscard]] MetricsRegistry* metrics() noexcept;

/// Install/replace the global sinks. Callers keep ownership and must keep
/// the objects alive until uninstall (or a replacing install).
void install(TraceRecorder* trace_sink, MetricsRegistry* metrics_sink) noexcept;
void uninstall() noexcept;

/// Owns one recorder + one registry and installs them for its lifetime.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] TraceRecorder& trace() noexcept { return *trace_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return *metrics_; }

 private:
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MetricsRegistry> metrics_;
};

// --- null-safe instrumentation helpers -------------------------------

/// Bump a counter (no-op when disabled).
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (auto* m = metrics()) m->counter(name).add(delta);
}

/// Set a gauge (no-op when disabled).
inline void gauge_set(std::string_view name, double value) {
  if (auto* m = metrics()) m->gauge(name).set(value);
}

/// Resolve a histogram once before a loop; nullptr when disabled.
[[nodiscard]] inline Histogram* histogram_ptr(std::string_view name) {
  auto* m = metrics();
  return m != nullptr ? &m->histogram(name) : nullptr;
}

/// Record a sim-clock span on a resource track (no-op when disabled).
inline void sim_span(const char* name, const char* category, const char* track,
                     util::SimTime start, util::SimTime duration) {
  if (auto* t = trace()) {
    t->span(Domain::kSim, name, category, track, start, duration);
  }
}

/// Record a sim-clock instant event (no-op when disabled).
inline void sim_instant(const char* name, const char* category,
                        const char* track, util::SimTime at) {
  if (auto* t = trace()) t->instant(Domain::kSim, name, category, track, at);
}

/// Open a wall-clock span against the global sink (no-op when disabled).
[[nodiscard]] inline ScopedSpan wall_span(const char* name,
                                          const char* category) {
  return ScopedSpan(trace(), name, category);
}

}  // namespace nessa::telemetry
