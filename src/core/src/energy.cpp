#include "nessa/core/energy.hpp"

namespace nessa::core {

EnergyReport estimate_energy(const RunResult& run,
                             const smartssd::GpuSpec& gpu,
                             SelectionSite site,
                             const smartssd::FpgaConfig& fpga,
                             const smartssd::CpuSpec& cpu) {
  EnergyReport report;
  double selection_watts = 0.0;
  switch (site) {
    case SelectionSite::kNone:
      selection_watts = 0.0;
      break;
    case SelectionSite::kFpga:
      selection_watts = fpga.power_watts;
      break;
    case SelectionSite::kHostCpu:
      selection_watts = cpu.power_watts;
      break;
  }
  for (const auto& epoch : run.epochs) {
    const double select_s =
        util::to_seconds(epoch.cost.storage_scan + epoch.cost.selection);
    const double transfer_s =
        util::to_seconds(epoch.cost.subset_transfer + epoch.cost.feedback);
    const double gpu_s = util::to_seconds(epoch.cost.gpu_compute);
    report.selection_joules += selection_watts * select_s;
    report.transfer_joules += cpu.power_watts * transfer_s;
    report.gpu_joules += gpu.power_watts * gpu_s;
  }
  return report;
}

}  // namespace nessa::core
