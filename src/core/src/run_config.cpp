#include "nessa/core/run_config.hpp"

#include <sstream>
#include <stdexcept>

#include "nessa/ckpt/buffer.hpp"
#include "nessa/ckpt/store.hpp"
#include "nessa/core/pipeline.hpp"
#include "nessa/telemetry/telemetry.hpp"
#include "nessa/util/rng.hpp"

namespace nessa::core {

selection::DriverConfig RunConfig::driver() const {
  selection::DriverConfig cfg;
  cfg.greedy = nessa.greedy;
  cfg.stochastic_epsilon = nessa.stochastic_epsilon;
  cfg.per_class = true;
  cfg.partition_quota = nessa.partition_quota;
  cfg.parallelism = parallelism;
  cfg.seed = train.seed;
  return cfg;
}

std::vector<std::string> RunConfig::validate() const {
  // The JobSpec half carries every spec-side constraint; the host-side
  // options (parallelism, telemetry paths) have no invalid states today.
  return JobSpec::validate();
}

void RunConfig::validate_or_throw() const {
  const auto errors = validate();
  if (errors.empty()) return;
  std::ostringstream out;
  out << "RunConfig: " << errors.size() << " error(s): ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) out << "; ";
    out << errors[i];
  }
  throw std::invalid_argument(out.str());
}

namespace {

// --- pipeline checkpoint codec ----------------------------------------
// The batch-granular simulation is a pure function of its configuration,
// so its snapshot is the sequence of epoch barriers crossed so far (plus a
// fingerprint binding it to the configuration). Resume re-runs the
// deterministic simulation and verifies, barrier by barrier, that it
// retraces the checkpointed prefix bit-identically — any divergence is a
// typed kBadPayload error. Snapshots live in a `pipeline/` subdirectory so
// they never collide with the trainers' snapshots in the same dir.

std::uint64_t pipeline_fingerprint(const RunConfig& config) {
  std::uint64_t s = 0x706970656c696e65ULL;  // "pipeline"
  auto mix = [&s](std::uint64_t v) {
    s ^= v;
    std::uint64_t t = s;
    s = util::splitmix64(t);
  };
  mix(config.pipeline_epochs);
  mix(config.workload.pool_records);
  mix(config.workload.subset_records);
  mix(config.workload.record_bytes);
  mix(config.workload.batch_size);
  mix(config.workload.macs_per_record);
  mix(config.workload.selection_ops);
  mix(config.workload.feedback_bytes);
  mix(config.workload.chunk_records);
  mix(config.pipeline_options.p2p_scan ? 1 : 0);
  mix(config.pipeline_options.max_inflight);
  mix(config.fault_plan.seed);
  return s;
}

std::vector<std::uint8_t> encode_pipeline_snapshot(
    std::uint64_t fingerprint,
    const std::vector<smartssd::EpochBarrier>& barriers) {
  ckpt::BufWriter w;
  w.u64(fingerprint);
  w.u64(barriers.size());
  for (const auto& b : barriers) {
    w.u64(b.epoch);
    w.u64(static_cast<std::uint64_t>(b.at));
    w.boolean(b.host_fallback);
    w.u64(b.dropped_batches);
    w.u64(b.stale_epochs);
  }
  return w.take();
}

std::vector<smartssd::EpochBarrier> decode_pipeline_snapshot(
    const std::vector<std::uint8_t>& payload, std::uint64_t fingerprint) {
  ckpt::BufReader r(payload);
  if (r.u64() != fingerprint) {
    throw ckpt::SnapshotError(
        ckpt::SnapshotFault::kBadPayload,
        "pipeline snapshot fingerprint mismatch: the run configuration "
        "differs from the checkpointed run");
  }
  const std::uint64_t n = r.u64();
  std::vector<smartssd::EpochBarrier> barriers;
  barriers.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    smartssd::EpochBarrier b;
    b.epoch = static_cast<std::size_t>(r.u64());
    b.at = static_cast<util::SimTime>(r.u64());
    b.host_fallback = r.boolean();
    b.dropped_batches = r.u64();
    b.stale_epochs = r.u64();
    barriers.push_back(b);
  }
  if (!r.done()) {
    throw ckpt::SnapshotError(ckpt::SnapshotFault::kBadPayload,
                              "pipeline snapshot has trailing bytes");
  }
  return barriers;
}

}  // namespace

smartssd::PipelineTrace simulate(const RunConfig& config) {
  config.validate_or_throw();
  smartssd::PipelineOptions options = config.pipeline_options;
  if (config.fault_plan.enabled() ||
      config.fault_plan.selection_deadline_factor > 0.0 ||
      config.fault_plan.has_crash_point()) {
    options.fault_plan = &config.fault_plan;
  }
  if (!config.checkpoint.enabled()) {
    return smartssd::simulate_pipeline(config.system, config.workload,
                                       config.pipeline_epochs, options);
  }

  ckpt::CheckpointConfig ckpt_config = config.checkpoint;
  ckpt_config.dir += "/pipeline";
  if (ckpt_config.every_epochs == 0) ckpt_config.every_epochs = 1;
  const std::uint64_t fingerprint = pipeline_fingerprint(config);

  // Resume = deterministic replay: load the checkpointed barrier prefix,
  // re-run the simulation (the in-flight epoch-lookahead state at the
  // barrier is a pure function of the prefix), and verify each barrier the
  // replay crosses against the snapshot.
  std::vector<smartssd::EpochBarrier> stored;
  if (ckpt_config.resume) {
    const ckpt::Snapshot snap = ckpt::Reader(ckpt_config.dir).load_latest();
    stored = decode_pipeline_snapshot(snap.payload, fingerprint);
    telemetry::count("ckpt.resumes");
  }

  ckpt::Writer writer(ckpt_config);
  const std::size_t restored = stored.size();  // checkpointed prefix length
  std::size_t verified = 0;
  options.on_epoch_barrier = [&](const smartssd::EpochBarrier& b) {
    if (verified < restored) {
      const smartssd::EpochBarrier& s = stored[verified];
      if (s.epoch != b.epoch || s.at != b.at ||
          s.host_fallback != b.host_fallback ||
          s.dropped_batches != b.dropped_batches ||
          s.stale_epochs != b.stale_epochs) {
        throw ckpt::SnapshotError(
            ckpt::SnapshotFault::kBadPayload,
            "pipeline replay diverged from the checkpointed barrier at "
            "epoch " +
                std::to_string(b.epoch));
      }
      ++verified;
      return;  // already persisted by the crashed run
    }
    stored.push_back(b);  // extend the persisted prefix as the run advances
    if (b.epoch % ckpt_config.every_epochs == 0) {
      writer.write(b.epoch, encode_pipeline_snapshot(fingerprint, stored));
    }
  };
  return smartssd::simulate_pipeline(config.system, config.workload,
                                     config.pipeline_epochs, options);
}

}  // namespace nessa::core
