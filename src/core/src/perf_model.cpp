#include "nessa/core/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>

#include "nessa/fault/fault_plan.hpp"
#include "nessa/smartssd/cpu_model.hpp"
#include "nessa/smartssd/pipeline_sim.hpp"
#include "nessa/telemetry/telemetry.hpp"

namespace nessa::core {

const char* to_string(PerfModelKind kind) noexcept {
  switch (kind) {
    case PerfModelKind::kAnalytic:
      return "analytic";
    case PerfModelKind::kEventDriven:
      return "event";
  }
  return "unknown";
}

PerfModelKind perf_model_from_string(const std::string& name) {
  if (name == "analytic") return PerfModelKind::kAnalytic;
  if (name == "event" || name == "event-driven") {
    return PerfModelKind::kEventDriven;
  }
  throw std::invalid_argument(
      "perf_model_from_string: unknown performance model '" + name +
      "' (expected analytic|event)");
}

namespace {

using util::SimTime;

/// The closed-form steady-state model the trainers historically inlined.
/// Every SmartSsdSystem primitive call (and therefore every traffic-stats
/// update and telemetry counter) is kept in the original order, so runs are
/// bit-identical to the pre-refactor trainers.
class AnalyticPerformanceModel final : public PerformanceModel {
 public:
  [[nodiscard]] PerfModelKind kind() const noexcept override {
    return PerfModelKind::kAnalytic;
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "analytic";
  }

  EpochCost nessa_epoch(smartssd::SmartSsdSystem& system,
                        const NessaEpochDemand& d) override {
    EpochCost cost;
    cost.selection_overlapped = true;
    if (d.reselect) {
      if (d.scan_via_host) {
        // Degraded routing: the pool goes up to a host bounce buffer and
        // back down to the FPGA over the shared interconnect.
        const std::uint64_t pool_bytes =
            static_cast<std::uint64_t>(d.pool_records) * d.record_bytes;
        cost.storage_scan =
            system.flash_to_host(d.pool_records, d.record_bytes) +
            system.host_to_fpga(pool_bytes);
      } else {
        cost.storage_scan =
            system.flash_to_fpga(d.pool_records, d.record_bytes);
      }
      if (d.scan_slowdown > 1.0) {
        cost.storage_scan = static_cast<SimTime>(
            std::llround(static_cast<double>(cost.storage_scan) *
                         d.scan_slowdown));
      }
      cost.selection = system.fpga_forward_time(d.forward_macs) +
                       system.fpga_selection_time(d.selection_ops) +
                       d.selection_stall;
    }
    cost.subset_transfer = system.subset_to_gpu(
        static_cast<std::uint64_t>(d.subset_records) * d.record_bytes);
    cost.gpu_compute = smartssd::train_compute_time(
        system.gpu(), d.subset_records, d.train_gflops_per_sample,
        d.batch_size);
    if (d.weight_feedback) {
      cost.feedback = system.weights_to_fpga(d.feedback_bytes);
    }
    return cost;
  }

  EpochCost host_selection_epoch(smartssd::SmartSsdSystem& system,
                                 const HostSelectionDemand& d) override {
    const auto& gpu = system.gpu();
    EpochCost cost;  // serial phases: selection_overlapped stays false
    // Full scan to the host: raw link time or record decode for the GPU
    // pass, whichever dominates.
    const auto scan_link = system.flash_to_host(d.scan_records, d.record_bytes);
    const auto scan_decode =
        smartssd::epoch_cost(gpu, d.scan_records, d.record_bytes, 0.0,
                             d.batch_size)
            .data_time;
    cost.storage_scan = std::max(scan_link, scan_decode);
    cost.selection = smartssd::inference_time(
        gpu, d.scan_records, d.train_gflops_per_sample, d.batch_size);
    if (d.cpu_selection_ops > 0.0) {
      cost.selection += smartssd::cpu_compute_time(cpu_, d.cpu_selection_ops);
    }
    cost.subset_transfer = system.host_to_gpu(
        static_cast<std::uint64_t>(d.subset_records) * d.record_bytes);
    cost.gpu_compute = smartssd::train_compute_time(
        gpu, d.subset_records, d.train_gflops_per_sample, d.batch_size);
    return cost;
  }

  EpochCost conventional_epoch(smartssd::SmartSsdSystem& system,
                               const ConventionalDemand& d) override {
    const auto gpu_cost = smartssd::epoch_cost(
        system.gpu(), d.train_records, d.record_bytes,
        d.train_gflops_per_sample, d.batch_size);
    EpochCost cost;
    cost.subset_transfer =
        d.data_time_override >= 0 ? d.data_time_override : gpu_cost.data_time;
    cost.gpu_compute = gpu_cost.compute_time;
    return cost;
  }

  EpochCost multi_epoch(smartssd::SmartSsdSystem& system,
                        const MultiEpochDemand& d) override {
    EpochCost cost;
    cost.selection_overlapped = true;
    // Devices scan their shards in parallel: per-epoch scan time is one
    // shard's time, while every device's bytes are accounted.
    SimTime scan = 0;
    for (std::size_t dev = 0; dev < d.devices; ++dev) {
      scan = std::max(scan,
                      system.flash_to_fpga(d.shard_records, d.record_bytes));
    }
    cost.storage_scan = scan;

    SimTime selection = system.fpga_forward_time(d.shard_forward_macs) +
                        system.fpga_selection_time(d.local_selection_ops);
    // Merge: local winners' embeddings + ids cross the interconnect to the
    // merge device, which re-selects over the union.
    selection += system.weights_to_fpga(d.merge_union_bytes);
    selection += system.fpga_selection_time(d.merge_ops);
    cost.selection = selection;

    cost.subset_transfer = system.subset_to_gpu(
        static_cast<std::uint64_t>(d.subset_records) * d.record_bytes);
    cost.gpu_compute = smartssd::train_compute_time(
        system.gpu(), d.subset_records, d.train_gflops_per_sample,
        d.batch_size);
    if (d.feedback_bytes_per_device > 0) {
      // Broadcast the refreshed quantized weights to every device.
      SimTime feedback = 0;
      for (std::size_t dev = 0; dev < d.devices; ++dev) {
        feedback =
            std::max(feedback, system.weights_to_fpga(
                                   d.feedback_bytes_per_device));
      }
      cost.feedback = feedback;
    }
    return cost;
  }

 private:
  smartssd::CpuSpec cpu_{};
};

/// Detaches the global telemetry sinks for a scope: the event model's
/// steady-state probes are internal measurements, not part of the caller's
/// run, so their spans/counters must not leak into an installed Session.
class TelemetryMute {
 public:
  TelemetryMute()
      : trace_(telemetry::trace()), metrics_(telemetry::metrics()) {
    telemetry::uninstall();
  }
  ~TelemetryMute() {
    if (trace_ != nullptr || metrics_ != nullptr) {
      telemetry::install(trace_, metrics_);
    }
  }
  TelemetryMute(const TelemetryMute&) = delete;
  TelemetryMute& operator=(const TelemetryMute&) = delete;

 private:
  telemetry::TraceRecorder* trace_;
  telemetry::MetricsRegistry* metrics_;
};

/// Prices the overlapped NeSSA epoch with a discrete-event steady-state
/// probe on the DeviceGraph; everything serial delegates to the analytic
/// model (its closed form is exact when nothing overlaps).
class EventPerformanceModel final : public PerformanceModel {
 public:
  [[nodiscard]] PerfModelKind kind() const noexcept override {
    return PerfModelKind::kEventDriven;
  }
  [[nodiscard]] const char* name() const noexcept override { return "event"; }

  EpochCost nessa_epoch(smartssd::SmartSsdSystem& system,
                        const NessaEpochDemand& d) override {
    EpochCost cost = analytic_.nessa_epoch(system, d);
    // Without a scan there is no FPGA/GPU overlap to model — the analytic
    // gpu_phase sum is exact.
    if (!d.reselect || d.pool_records == 0 || d.subset_records == 0 ||
        d.batch_size == 0) {
      return cost;
    }
    cost.modeled_total = steady_epoch_time(system.config(), d);
    return cost;
  }

  EpochCost host_selection_epoch(smartssd::SmartSsdSystem& system,
                                 const HostSelectionDemand& d) override {
    return analytic_.host_selection_epoch(system, d);
  }

  EpochCost conventional_epoch(smartssd::SmartSsdSystem& system,
                               const ConventionalDemand& d) override {
    return analytic_.conventional_epoch(system, d);
  }

  EpochCost multi_epoch(smartssd::SmartSsdSystem& system,
                        const MultiEpochDemand& d) override {
    return analytic_.multi_epoch(system, d);
  }

 private:
  // Demands repeat across epochs whenever the pool and subset are stable,
  // so probe results are memoized per demand shape (including the
  // degraded-mode knobs — a faulted epoch shape probes separately).
  using Key = std::tuple<std::size_t, std::size_t, std::uint64_t,
                         std::uint64_t, std::uint64_t, double, std::size_t,
                         std::uint64_t, std::size_t, bool, double, SimTime>;

  SimTime steady_epoch_time(const smartssd::SystemConfig& config,
                            const NessaEpochDemand& d) {
    const Key key{d.pool_records,  d.subset_records,
                  d.record_bytes,  d.forward_macs,
                  d.selection_ops, d.train_gflops_per_sample,
                  d.batch_size,    d.weight_feedback ? d.feedback_bytes : 0,
                  d.chunk_records, d.scan_via_host,
                  d.scan_slowdown, d.selection_stall};
    if (const auto it = cache_.find(key); it != cache_.end()) {
      return it->second;
    }

    smartssd::EpochWorkload w;
    w.pool_records = d.pool_records;
    w.subset_records = d.subset_records;
    w.record_bytes = d.record_bytes;
    w.macs_per_record = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(static_cast<double>(d.forward_macs) /
                            static_cast<double>(d.pool_records))));
    w.selection_ops = d.selection_ops;
    w.train_gflops_per_sample = d.train_gflops_per_sample;
    w.batch_size = d.batch_size;
    w.feedback_bytes = d.weight_feedback ? d.feedback_bytes : 0;
    w.chunk_records = d.chunk_records;

    // A handful of identical epochs reaches steady state (the first epoch
    // is excluded by the steady-period formula); the probe's own telemetry
    // is muted so it never pollutes the caller's trace.
    constexpr std::size_t kProbeEpochs = 5;
    TelemetryMute mute;
    smartssd::PipelineOptions opts;
    // Degraded routing probes over the host-mediated path.
    opts.p2p_scan = !d.scan_via_host;
    // Degraded NAND probes with every flash read slowed by the factor
    // (a rate-1.0 slowdown spec hits every request deterministically).
    fault::FaultPlan probe_plan;
    if (d.scan_slowdown > 1.0) {
      fault::FaultSpec slow;
      slow.component = "flash_bus";
      slow.kind = fault::FaultKind::kSlowdown;
      slow.rate = 1.0;
      slow.slowdown = d.scan_slowdown;
      probe_plan.faults.push_back(std::move(slow));
      opts.fault_plan = &probe_plan;
    }
    const auto trace =
        smartssd::simulate_pipeline(config, w, kProbeEpochs, opts);
    // An injected FPGA stall serializes into the selection pass, which the
    // overlapped schedule places on the epoch's FPGA phase.
    const SimTime steady = trace.steady_epoch_time + d.selection_stall;
    cache_.emplace(key, steady);
    return steady;
  }

  AnalyticPerformanceModel analytic_;
  std::map<Key, SimTime> cache_;
};

}  // namespace

std::unique_ptr<PerformanceModel> make_performance_model(PerfModelKind kind) {
  switch (kind) {
    case PerfModelKind::kAnalytic:
      return std::make_unique<AnalyticPerformanceModel>();
    case PerfModelKind::kEventDriven:
      return std::make_unique<EventPerformanceModel>();
  }
  throw std::invalid_argument("make_performance_model: unknown kind");
}

}  // namespace nessa::core
