#include "nessa/core/train_utils.hpp"

#include <numeric>
#include <stdexcept>

#include "nessa/data/loader.hpp"
#include "nessa/nn/loss.hpp"
#include "nessa/telemetry/telemetry.hpp"

namespace nessa::core {

double train_one_epoch(nn::Sequential& model, nn::Sgd& optimizer,
                       const data::Split& split,
                       std::span<const std::size_t> indices,
                       std::span<const double> weights,
                       std::size_t batch_size, util::Rng& rng) {
  if (indices.empty()) return 0.0;
  if (!weights.empty() && weights.size() != indices.size()) {
    throw std::invalid_argument("train_one_epoch: weight count mismatch");
  }
  auto span = telemetry::wall_span("train-epoch", "core");
  telemetry::count("core.train.samples", indices.size());

  // A borrowed-RNG shuffled sampler consumes exactly one Rng::shuffle of a
  // size-n position vector from the caller's stream — the same draw the
  // pre-Loader loop made — so the epoch's batch composition (and every
  // checkpointed RNG state) is bit-identical to the legacy path. Positions
  // (not the caller's index array) are shuffled so weights stay aligned
  // with their samples.
  data::ShuffledSampler sampler(indices.size(), rng);
  data::LoaderOptions options;
  options.batch_size = batch_size;
  data::Loader loader(split, indices, sampler, options);
  loader.begin_epoch(0);

  nn::SoftmaxCrossEntropy loss_fn;
  double loss_sum = 0.0;
  std::size_t batches = 0;

  while (auto item = loader.next()) {
    const auto& positions = item->positions;
    const std::size_t count = positions.size();
    auto& batch = item->batch;

    model.zero_grads();
    nn::Tensor logits = model.forward(batch.features, /*train=*/true);
    auto loss = loss_fn.forward(logits, batch.labels);
    nn::Tensor grad = loss_fn.backward(loss, batch.labels);

    if (!weights.empty()) {
      // Scale each example's gradient row by its normalized weight; the
      // normalization keeps the mean-gradient magnitude comparable to
      // unweighted SGD, so the same LR schedule applies.
      double wsum = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        wsum += weights[positions[i]];
      }
      if (wsum > 0.0) {
        const double scale_base =
            static_cast<double>(count) / wsum;
        for (std::size_t i = 0; i < count; ++i) {
          const float s = static_cast<float>(
              weights[positions[i]] * scale_base);
          float* row = grad.data() + i * grad.cols();
          for (std::size_t c = 0; c < grad.cols(); ++c) row[c] *= s;
        }
      }
    }

    model.backward(grad);
    optimizer.step(model.params());
    loss_sum += loss.mean_loss;
    ++batches;
  }
  telemetry::count("core.train.batches", batches);
  return batches ? loss_sum / static_cast<double>(batches) : 0.0;
}

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

}  // namespace nessa::core
