// Additional comparison pipelines:
//  - run_full_cached: full-data training behind a SHADE/iCache-style host
//    cache (the paper's §1 argument that caching alone cannot solve the
//    training bottleneck — gradient work is untouched);
//  - run_loss_topk: the "biggest losers" heuristic [19], which ranks by
//    loss alone and therefore chases label noise and boundary points
//    without any representativeness constraint.
#include <algorithm>
#include <cmath>

#include "nessa/core/pipeline.hpp"
#include "nessa/core/train_utils.hpp"
#include "nessa/fault/crash.hpp"
#include "nessa/nn/embedding.hpp"
#include "nessa/nn/metrics.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/selection/baselines.hpp"
#include "pipeline_common.hpp"
#include "trainer_ckpt.hpp"

namespace nessa::core {

RunResult run_full_cached(const PipelineInputs& inputs,
                          const smartssd::HostCache& cache,
                          smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  util::Rng rng(inputs.train.seed);
  auto model = detail::build_target_model(inputs, rng);
  nn::Sgd sgd(inputs.train.sgd);
  auto schedule = inputs.train.scale_lr_schedule
                      ? nn::StepLrSchedule::paper_scaled(inputs.train.epochs)
                      : nn::StepLrSchedule::paper_default();

  const auto indices = iota_indices(ds.train_size());
  auto perf = make_performance_model(inputs.perf_model);
  const auto& gpu = system.gpu();
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const std::size_t paper_n = inputs.info.paper_train_size;

  RunResult result;
  detail::CommonCheckpointHook ckpt(inputs, "full_cached", 0.0, rng, model,
                                    sgd, result);
  for (std::size_t epoch = ckpt.start_epoch(); epoch < inputs.train.epochs;
       ++epoch) {
    fault::maybe_crash(inputs.fault_plan, epoch, ckpt.sim_elapsed());
    sgd.set_learning_rate(schedule.lr_at(epoch));
    EpochReport report;
    report.epoch = epoch;
    report.subset_size = indices.size();
    report.pool_size = indices.size();
    report.subset_fraction = 1.0;
    report.class_mix = detail::stream_class_mix(inputs, epoch);

    const data::Dataset& eds = detail::epoch_data(inputs, epoch);
    report.train_loss =
        train_one_epoch(model, sgd, eds.train(), indices, {},
                        inputs.train.batch_size, rng);
    report.test_accuracy =
        nn::evaluate(model, eds.test().features, eds.test().labels).accuracy;

    // Identical gradient work; the cache only shortens the input pipeline
    // and shrinks interconnect traffic to the miss set.
    ConventionalDemand demand;
    demand.train_records = paper_n;
    demand.record_bytes = sample_bytes;
    demand.train_gflops_per_sample = inputs.model.paper_gflops_per_sample;
    demand.batch_size = inputs.train.batch_size;
    demand.data_time_override = cache.epoch_data_time(gpu, paper_n,
                                                      sample_bytes);
    report.cost = perf->conventional_epoch(system, demand);
    result.interconnect_bytes +=
        cache.epoch_miss_bytes(paper_n, sample_bytes);

    result.epochs.push_back(std::move(report));
    ckpt.epoch_done(epoch);
  }
  result.finalize();
  return result;
}

RunResult run_loss_topk(const PipelineInputs& inputs, double subset_fraction,
                        smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  const std::size_t n = ds.train_size();
  util::Rng rng(inputs.train.seed);
  auto model = detail::build_target_model(inputs, rng);
  nn::Sgd sgd(inputs.train.sgd);
  auto schedule = inputs.train.scale_lr_schedule
                      ? nn::StepLrSchedule::paper_scaled(inputs.train.epochs)
                      : nn::StepLrSchedule::paper_default();

  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(subset_fraction *
                                             static_cast<double>(n))));
  auto perf = make_performance_model(inputs.perf_model);
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const std::size_t paper_n = inputs.info.paper_train_size;
  const std::size_t paper_k = detail::paper_count(inputs, subset_fraction);

  RunResult result;
  std::vector<std::size_t> prev_subset;
  detail::CommonCheckpointHook ckpt(inputs, "loss_topk", subset_fraction,
                                    rng, model, sgd, result, &prev_subset);
  for (std::size_t epoch = ckpt.start_epoch(); epoch < inputs.train.epochs;
       ++epoch) {
    fault::maybe_crash(inputs.fault_plan, epoch, ckpt.sim_elapsed());
    sgd.set_learning_rate(schedule.lr_at(epoch));
    const data::Dataset& eds = detail::epoch_data(inputs, epoch);

    // Loss scan over everything (GPU inference), then a trivial top-k.
    auto emb = nn::compute_embeddings(model, eds.train().features,
                                      eds.train().labels,
                                      nn::EmbeddingKind::kLogitGrad);
    auto subset = selection::loss_topk(emb.losses, k);

    EpochReport report;
    report.epoch = epoch;
    report.subset_size = subset.size();
    report.pool_size = n;
    report.subset_fraction =
        static_cast<double>(subset.size()) / static_cast<double>(n);
    report.selection_overlap =
        prev_subset.empty() ? 1.0
                            : detail::selection_overlap(subset, prev_subset);
    report.class_mix = detail::stream_class_mix(inputs, epoch);
    report.train_loss =
        train_one_epoch(model, sgd, eds.train(), subset, {},
                        inputs.train.batch_size, rng);
    report.test_accuracy =
        nn::evaluate(model, eds.test().features, eds.test().labels).accuracy;
    prev_subset = std::move(subset);

    // Loss ranking needs only the GPU loss pass — no CPU greedy phase.
    HostSelectionDemand demand;
    demand.scan_records = paper_n;
    demand.subset_records = paper_k;
    demand.record_bytes = sample_bytes;
    demand.train_gflops_per_sample = inputs.model.paper_gflops_per_sample;
    demand.batch_size = inputs.train.batch_size;
    demand.cpu_selection_ops = 0.0;
    report.cost = perf->host_selection_epoch(system, demand);
    result.interconnect_bytes +=
        static_cast<std::uint64_t>(paper_n) * sample_bytes;

    result.epochs.push_back(std::move(report));
    ckpt.epoch_done(epoch);
  }
  result.finalize();
  return result;
}

}  // namespace nessa::core
