// Additional comparison pipelines:
//  - run_full_cached: full-data training behind a SHADE/iCache-style host
//    cache (the paper's §1 argument that caching alone cannot solve the
//    training bottleneck — gradient work is untouched);
//  - run_loss_topk: the "biggest losers" heuristic [19], which ranks by
//    loss alone and therefore chases label noise and boundary points
//    without any representativeness constraint.
#include <algorithm>
#include <cmath>

#include "nessa/core/pipeline.hpp"
#include "nessa/core/train_utils.hpp"
#include "nessa/nn/embedding.hpp"
#include "nessa/nn/metrics.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/selection/baselines.hpp"
#include "pipeline_common.hpp"

namespace nessa::core {

RunResult run_full_cached(const PipelineInputs& inputs,
                          const smartssd::HostCache& cache,
                          smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  util::Rng rng(inputs.train.seed);
  auto model = detail::build_target_model(inputs, rng);
  nn::Sgd sgd(inputs.train.sgd);
  auto schedule = inputs.train.scale_lr_schedule
                      ? nn::StepLrSchedule::paper_scaled(inputs.train.epochs)
                      : nn::StepLrSchedule::paper_default();

  const auto indices = iota_indices(ds.train_size());
  const auto& gpu = system.gpu();
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const std::size_t paper_n = inputs.info.paper_train_size;

  RunResult result;
  for (std::size_t epoch = 0; epoch < inputs.train.epochs; ++epoch) {
    sgd.set_learning_rate(schedule.lr_at(epoch));
    EpochReport report;
    report.epoch = epoch;
    report.subset_size = indices.size();
    report.pool_size = indices.size();
    report.subset_fraction = 1.0;

    report.train_loss =
        train_one_epoch(model, sgd, ds.train(), indices, {},
                        inputs.train.batch_size, rng);
    report.test_accuracy =
        nn::evaluate(model, ds.test().features, ds.test().labels).accuracy;

    // Identical gradient work; the cache only shortens the input pipeline
    // and shrinks interconnect traffic to the miss set.
    report.cost.subset_transfer =
        cache.epoch_data_time(gpu, paper_n, sample_bytes);
    report.cost.gpu_compute = smartssd::train_compute_time(
        gpu, paper_n, inputs.model.paper_gflops_per_sample,
        inputs.train.batch_size);
    result.interconnect_bytes +=
        cache.epoch_miss_bytes(paper_n, sample_bytes);

    result.epochs.push_back(std::move(report));
  }
  (void)system;
  result.finalize();
  return result;
}

RunResult run_loss_topk(const PipelineInputs& inputs, double subset_fraction,
                        smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  const std::size_t n = ds.train_size();
  util::Rng rng(inputs.train.seed);
  auto model = detail::build_target_model(inputs, rng);
  nn::Sgd sgd(inputs.train.sgd);
  auto schedule = inputs.train.scale_lr_schedule
                      ? nn::StepLrSchedule::paper_scaled(inputs.train.epochs)
                      : nn::StepLrSchedule::paper_default();

  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(subset_fraction *
                                             static_cast<double>(n))));
  const auto& gpu = system.gpu();
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const std::size_t paper_n = inputs.info.paper_train_size;
  const std::size_t paper_k = detail::paper_count(inputs, subset_fraction);

  RunResult result;
  for (std::size_t epoch = 0; epoch < inputs.train.epochs; ++epoch) {
    sgd.set_learning_rate(schedule.lr_at(epoch));

    // Loss scan over everything (GPU inference), then a trivial top-k.
    auto emb = nn::compute_embeddings(model, ds.train().features,
                                      ds.train().labels,
                                      nn::EmbeddingKind::kLogitGrad);
    auto subset = selection::loss_topk(emb.losses, k);

    EpochReport report;
    report.epoch = epoch;
    report.subset_size = subset.size();
    report.pool_size = n;
    report.subset_fraction =
        static_cast<double>(subset.size()) / static_cast<double>(n);
    report.train_loss =
        train_one_epoch(model, sgd, ds.train(), subset, {},
                        inputs.train.batch_size, rng);
    report.test_accuracy =
        nn::evaluate(model, ds.test().features, ds.test().labels).accuracy;

    const auto scan_link = system.flash_to_host(paper_n, sample_bytes);
    const auto scan_decode =
        smartssd::epoch_cost(gpu, paper_n, sample_bytes, 0.0,
                             inputs.train.batch_size)
            .data_time;
    report.cost.storage_scan = std::max(scan_link, scan_decode);
    result.interconnect_bytes +=
        static_cast<std::uint64_t>(paper_n) * sample_bytes;
    report.cost.selection = smartssd::inference_time(
        gpu, paper_n, inputs.model.paper_gflops_per_sample,
        inputs.train.batch_size);
    report.cost.subset_transfer = system.host_to_gpu(
        static_cast<std::uint64_t>(paper_k) * sample_bytes);
    report.cost.gpu_compute = smartssd::train_compute_time(
        gpu, paper_k, inputs.model.paper_gflops_per_sample,
        inputs.train.batch_size);

    result.epochs.push_back(std::move(report));
  }
  result.finalize();
  return result;
}

}  // namespace nessa::core
