#include "nessa/core/job_spec.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nessa/data/registry.hpp"

namespace nessa::core {

const char* to_string(PipelineKind kind) noexcept {
  switch (kind) {
    case PipelineKind::kNessa: return "nessa";
    case PipelineKind::kFull: return "full";
    case PipelineKind::kFullCached: return "full-cached";
    case PipelineKind::kCraig: return "craig";
    case PipelineKind::kKCenter: return "kcenter";
    case PipelineKind::kRandom: return "random";
    case PipelineKind::kLossTopk: return "loss-topk";
  }
  return "?";
}

PipelineKind pipeline_kind_from_string(std::string_view name) {
  if (name == "nessa") return PipelineKind::kNessa;
  if (name == "full") return PipelineKind::kFull;
  if (name == "full-cached") return PipelineKind::kFullCached;
  if (name == "craig") return PipelineKind::kCraig;
  if (name == "kcenter") return PipelineKind::kKCenter;
  if (name == "random") return PipelineKind::kRandom;
  if (name == "loss-topk") return PipelineKind::kLossTopk;
  throw std::invalid_argument(
      "unknown pipeline: " + std::string(name) +
      " (expected nessa|full|full-cached|craig|kcenter|random|loss-topk)");
}

namespace {

void check_system(const smartssd::SystemConfig& sys,
                  std::vector<std::string>& errors) {
  if (sys.p2p_bw_bps <= 0.0) {
    errors.push_back("system.p2p_bw_bps: must be positive");
  }
  if (sys.host_link_bw_bps <= 0.0) {
    errors.push_back("system.host_link_bw_bps: must be positive");
  }
  if (sys.gpu_link_bw_bps <= 0.0) {
    errors.push_back("system.gpu_link_bw_bps: must be positive");
  }
  if (sys.staging_chunk_bytes == 0) {
    errors.push_back("system.staging_chunk_bytes: must be > 0");
  }
  if (sys.gpu.empty()) {
    errors.push_back("system.gpu: GPU name must not be empty");
  }
}

void check_workload(const smartssd::EpochWorkload& w,
                    std::vector<std::string>& errors) {
  if (w.batch_size == 0) {
    errors.push_back("workload.batch_size: must be > 0");
  }
  if (w.pool_records == 0) {
    errors.push_back("workload.pool_records: must be > 0");
  }
  if (w.subset_records == 0) {
    errors.push_back("workload.subset_records: must be > 0");
  }
  if (w.subset_records > w.pool_records) {
    errors.push_back(
        "workload.subset_records: must not exceed workload.pool_records");
  }
  if (w.record_bytes == 0) {
    errors.push_back("workload.record_bytes: must be > 0");
  }
}

void check_train(const TrainConfig& t, std::vector<std::string>& errors) {
  if (t.epochs == 0) {
    errors.push_back("train.epochs: must be > 0");
  }
  if (t.batch_size == 0) {
    errors.push_back("train.batch_size: must be > 0");
  }
}

void check_nessa(const NessaConfig& n, std::vector<std::string>& errors) {
  if (n.subset_fraction <= 0.0 || n.subset_fraction > 1.0) {
    errors.push_back("nessa.subset_fraction: must be in (0, 1]");
  }
  if (n.min_subset_fraction <= 0.0 ||
      n.min_subset_fraction > n.subset_fraction) {
    errors.push_back(
        "nessa.min_subset_fraction: must be in (0, subset_fraction]");
  }
  if (n.greedy == selection::GreedyKind::kStochastic &&
      (n.stochastic_epsilon <= 0.0 || n.stochastic_epsilon >= 1.0)) {
    errors.push_back("nessa.stochastic_epsilon: must be in (0, 1)");
  }
  if (n.subset_biasing && n.drop_interval_epochs == 0) {
    errors.push_back(
        "nessa.drop_interval_epochs: must be > 0 when subset_biasing is on");
  }
  if (n.subset_biasing &&
      (n.drop_quantile < 0.0 || n.drop_quantile > 1.0)) {
    errors.push_back("nessa.drop_quantile: must be in [0, 1]");
  }
  if (n.subset_biasing && n.min_pool_factor < 1.0) {
    errors.push_back("nessa.min_pool_factor: must be >= 1");
  }
  if (n.selection_interval == 0) {
    errors.push_back("nessa.selection_interval: must be > 0");
  }
  if (n.dynamic_sizing &&
      (n.shrink_step <= 0.0 || n.shrink_step >= 1.0)) {
    errors.push_back("nessa.shrink_step: must be in (0, 1)");
  }
  if (n.selection_proxy_factor <= 0.0) {
    errors.push_back("nessa.selection_proxy_factor: must be positive");
  }
}

}  // namespace

std::vector<std::string> JobSpec::validate() const {
  std::vector<std::string> errors;
  if (dataset.empty()) {
    errors.push_back("dataset: name must not be empty");
  } else {
    try {
      (void)data::dataset_info(dataset);
    } catch (const std::exception& e) {
      errors.push_back("dataset: " + std::string(e.what()));
    }
  }
  if (!(dataset_scale > 0.0) || dataset_scale > 1.0 ||
      !std::isfinite(dataset_scale)) {
    errors.push_back("dataset_scale: must be in (0, 1]");
  }
  if (devices == 0) {
    errors.push_back("devices: must be >= 1");
  }
  if (devices > 1 && pipeline != PipelineKind::kNessa) {
    errors.push_back("devices: only the nessa pipeline shards across "
                     "multiple SmartSSDs");
  }
  check_system(system, errors);
  check_workload(workload, errors);
  check_train(train, errors);
  check_nessa(nessa, errors);
  if (pipeline_epochs < 2) {
    errors.push_back("pipeline_epochs: must be >= 2");
  }
  if (pipeline_options.max_inflight == 0) {
    errors.push_back("pipeline_options.max_inflight: must be >= 1");
  }
  if (pipeline_options.fault_plan != nullptr &&
      pipeline_options.fault_plan != &fault_plan) {
    errors.push_back(
        "pipeline_options.fault_plan: set JobSpec::fault_plan instead of "
        "the raw pointer (the entry points wire it up)");
  }
  for (const auto& err : fault_plan.validate()) {
    errors.push_back("fault_plan." + err);
  }
  if (checkpoint.enabled() && checkpoint.every_epochs == 0) {
    errors.push_back(
        "checkpoint.every_epochs: must be > 0 when a checkpoint dir is set");
  }
  if (checkpoint.resume && !checkpoint.enabled()) {
    errors.push_back("checkpoint.resume: requires a checkpoint dir");
  }
  return errors;
}

void JobSpec::validate_or_throw() const {
  const auto errors = validate();
  if (errors.empty()) return;
  std::ostringstream out;
  out << "JobSpec: " << errors.size() << " error(s): ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) out << "; ";
    out << errors[i];
  }
  throw std::invalid_argument(out.str());
}

}  // namespace nessa::core
