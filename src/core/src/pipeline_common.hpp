// Internal helpers shared by the pipeline translation units.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nessa/core/near_storage.hpp"
#include "nessa/core/pipeline.hpp"
#include "nessa/data/integrity.hpp"

namespace nessa::core::detail {

/// Validate required pipeline inputs; throws std::invalid_argument.
void check_inputs(const PipelineInputs& inputs);

/// Training data visible at `epoch`: the scenario stream's view when one is
/// attached, else the static dataset. Every run driver's epoch loop goes
/// through this, so non-stationary workloads thread through all pipelines.
const data::Dataset& epoch_data(const PipelineInputs& inputs,
                                std::size_t epoch);

/// |current ∩ previous| / |current| — the per-epoch selection-overlap
/// telemetry (1.0 when current is empty, i.e. nothing to turn over).
double selection_overlap(std::span<const std::size_t> current,
                         std::span<const std::size_t> previous);

/// Per-class histogram of the epoch's visible pool for scenario-stream
/// runs; empty when no stream is attached.
std::vector<std::uint32_t> stream_class_mix(const PipelineInputs& inputs,
                                            std::size_t epoch);

/// A selection scan routed through the chunked streaming interface.
struct ChunkedScore {
  QEmbeddings emb;
  std::uint64_t chunk_fetches = 0;  ///< 0 on the monolithic path
  /// Pool positions landing in quarantined chunks (1 = excluded; rows hold
  /// zeros in `emb` and must not be scored/selected). Empty when integrity
  /// is off or nothing was quarantined.
  std::vector<std::uint8_t> excluded;
  /// Integrity ledger of this scan (all-zero without integrity).
  data::IntegrityStats integrity;
};

/// Score `pool` with `kernel`. chunk_samples == 0 is the monolithic path
/// (exactly the legacy kernel.score call, zero fetches). Otherwise the pool
/// streams through data::ChunkedDataset in the monolithic batch order —
/// batch composition is preserved because the int8 kernel quantizes
/// activations per batch, so the results are bit-identical to the
/// monolithic scan. Chunks no longer holding pool members are never
/// fetched (subset biasing therefore saves real chunk fetches).
///
/// With `integrity` set, every fetch is CRC-verified (re-fetch then
/// quarantine per its policy; its corruptor injects the plan's bit flips)
/// and rows of quarantined chunks are excluded from the scan — reported in
/// `excluded`, never silently scored. Batches are then formed from the
/// surviving rows in pool order.
ChunkedScore score_pool(SelectionModel& kernel, const data::Split& split,
                        std::span<const std::size_t> pool, bool scaled,
                        std::size_t batch_size, std::size_t chunk_samples,
                        std::size_t stored_bytes_per_sample,
                        const data::ChunkIntegrity* integrity = nullptr);

/// Substrate-to-paper scale ratio (paper train size / substrate train size).
double scale_ratio(const PipelineInputs& inputs);

/// Paper-scale sample count corresponding to a substrate fraction.
std::size_t paper_count(const PipelineInputs& inputs, double fraction);

/// Int8 MACs per sample of the paper network's forward pass (~FLOPs / 2).
std::uint64_t paper_macs_per_sample(const PipelineInputs& inputs);

/// Bytes of one quantized weight refresh at paper scale (int8 per param).
std::uint64_t paper_qweight_bytes(const PipelineInputs& inputs);

/// The substrate target model: the custom factory when provided, else the
/// spec's MLP.
nn::Sequential build_target_model(const PipelineInputs& inputs,
                                  util::Rng& rng);

}  // namespace nessa::core::detail
