// Internal helpers shared by the pipeline translation units.
#pragma once

#include <cstdint>

#include "nessa/core/pipeline.hpp"

namespace nessa::core::detail {

/// Validate required pipeline inputs; throws std::invalid_argument.
void check_inputs(const PipelineInputs& inputs);

/// Substrate-to-paper scale ratio (paper train size / substrate train size).
double scale_ratio(const PipelineInputs& inputs);

/// Paper-scale sample count corresponding to a substrate fraction.
std::size_t paper_count(const PipelineInputs& inputs, double fraction);

/// Int8 MACs per sample of the paper network's forward pass (~FLOPs / 2).
std::uint64_t paper_macs_per_sample(const PipelineInputs& inputs);

/// Bytes of one quantized weight refresh at paper scale (int8 per param).
std::uint64_t paper_qweight_bytes(const PipelineInputs& inputs);

/// The substrate target model: the custom factory when provided, else the
/// spec's MLP.
nn::Sequential build_target_model(const PipelineInputs& inputs,
                                  util::Rng& rng);

}  // namespace nessa::core::detail
