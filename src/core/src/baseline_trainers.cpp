// CPU-side selection baselines: CRAIG [20], K-centers [17], and uniform
// random. All three train the same substrate model as NeSSA; the difference
// is where and how the subset is chosen, and what that costs at paper scale:
//  - CRAIG streams the full dataset to the host every epoch, runs a float
//    embedding pass on the GPU, then a per-class (unpartitioned) lazy-greedy
//    facility location on the CPU, and trains with gamma-weighted SGD.
//  - K-centers streams the full dataset to the host, extracts penultimate
//    features on the GPU, and runs greedy farthest-first on the CPU — whose
//    O(n k d_feat) distance work at paper scale is what makes it the slowest
//    system in Fig. 4.
//  - Random needs no scan at all; it reads just the sampled subset.
#include <algorithm>
#include <cmath>

#include "nessa/core/pipeline.hpp"
#include "nessa/core/train_utils.hpp"
#include "nessa/fault/crash.hpp"
#include "nessa/nn/embedding.hpp"
#include "nessa/nn/metrics.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/selection/baselines.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/selection/kcenter.hpp"
#include "pipeline_common.hpp"
#include "trainer_ckpt.hpp"

namespace nessa::core {

namespace {

/// Penultimate feature width of the paper network (ResNet global-average-
/// pool output); drives the K-centers CPU distance cost at paper scale.
std::size_t paper_feature_dim(const nn::ModelSpec& spec) {
  if (spec.paper_name == "ResNet-50") return 2048;
  if (spec.paper_name == "ResNet-18") return 512;
  return 64;  // ResNet-20
}

struct CommonState {
  nn::Sequential model;
  nn::Sgd sgd;
  nn::StepLrSchedule schedule;
  util::Rng rng;
};

CommonState make_state(const PipelineInputs& inputs) {
  util::Rng rng(inputs.train.seed);
  auto model = detail::build_target_model(inputs, rng);
  return CommonState{
      std::move(model), nn::Sgd(inputs.train.sgd),
      inputs.train.scale_lr_schedule
          ? nn::StepLrSchedule::paper_scaled(inputs.train.epochs)
          : nn::StepLrSchedule::paper_default(),
      std::move(rng)};
}

}  // namespace

RunResult run_craig(const PipelineInputs& inputs, double subset_fraction,
                    smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  const std::size_t n = ds.train_size();
  auto st = make_state(inputs);
  auto perf = make_performance_model(inputs.perf_model);

  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(subset_fraction *
                                             static_cast<double>(n))));
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const std::size_t paper_n = inputs.info.paper_train_size;
  const std::size_t paper_k = detail::paper_count(inputs, subset_fraction);
  const double ratio = detail::scale_ratio(inputs);

  selection::DriverConfig driver;
  driver.greedy = selection::GreedyKind::kLazy;
  driver.per_class = true;
  driver.partition_quota = 0;  // CRAIG selects over whole classes

  const auto all = iota_indices(n);

  RunResult result;
  std::vector<std::size_t> prev_subset;
  detail::CommonCheckpointHook ckpt(inputs, "craig", subset_fraction, st.rng,
                                    st.model, st.sgd, result, &prev_subset);
  for (std::size_t epoch = ckpt.start_epoch(); epoch < inputs.train.epochs;
       ++epoch) {
    fault::maybe_crash(inputs.fault_plan, epoch, ckpt.sim_elapsed());
    st.sgd.set_learning_rate(st.schedule.lr_at(epoch));
    driver.seed = inputs.train.seed * 104729 + epoch;
    const data::Dataset& eds = detail::epoch_data(inputs, epoch);

    // Float gradient embeddings over the full dataset (GPU inference).
    auto emb = nn::compute_embeddings(st.model, eds.train().features,
                                      eds.train().labels,
                                      nn::EmbeddingKind::kLogitGrad);
    std::vector<std::int32_t> labels(eds.train().labels.begin(),
                                     eds.train().labels.end());
    auto coreset =
        selection::select_coreset(emb.embeddings, labels, all, k, driver);

    std::vector<double> weights(coreset.weights.begin(),
                                coreset.weights.end());
    EpochReport report;
    report.epoch = epoch;
    report.subset_size = coreset.indices.size();
    report.pool_size = n;
    report.subset_fraction =
        static_cast<double>(coreset.indices.size()) / static_cast<double>(n);
    report.selection_overlap =
        prev_subset.empty()
            ? 1.0
            : detail::selection_overlap(coreset.indices, prev_subset);
    report.class_mix = detail::stream_class_mix(inputs, epoch);
    report.train_loss =
        train_one_epoch(st.model, st.sgd, eds.train(), coreset.indices,
                        weights, inputs.train.batch_size, st.rng);
    report.test_accuracy =
        nn::evaluate(st.model, eds.test().features, eds.test().labels)
            .accuracy;
    prev_subset = coreset.indices;

    // Paper-scale cost (serial phases): full scan to host (raw link time
    // or record decode for the embedding pass, whichever dominates), GPU
    // embedding pass, CPU greedy (quadratic per class — no partitioning),
    // subset in.
    HostSelectionDemand demand;
    demand.scan_records = paper_n;
    demand.subset_records = paper_k;
    demand.record_bytes = sample_bytes;
    demand.train_gflops_per_sample = inputs.model.paper_gflops_per_sample;
    demand.batch_size = inputs.train.batch_size;
    demand.cpu_selection_ops =
        static_cast<double>(coreset.similarity_ops + coreset.greedy_ops) *
        ratio * ratio;
    report.cost = perf->host_selection_epoch(system, demand);
    result.interconnect_bytes +=
        static_cast<std::uint64_t>(paper_n) * sample_bytes;

    result.epochs.push_back(std::move(report));
    ckpt.epoch_done(epoch);
  }
  result.finalize();
  return result;
}

RunResult run_kcenter(const PipelineInputs& inputs, double subset_fraction,
                      smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  const std::size_t n = ds.train_size();
  auto st = make_state(inputs);
  auto perf = make_performance_model(inputs.perf_model);

  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(subset_fraction *
                                             static_cast<double>(n))));
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const std::size_t paper_n = inputs.info.paper_train_size;
  const std::size_t paper_k = detail::paper_count(inputs, subset_fraction);
  const std::size_t feat_dim = paper_feature_dim(inputs.model);

  RunResult result;
  std::vector<std::size_t> prev_subset;
  detail::CommonCheckpointHook ckpt(inputs, "kcenter", subset_fraction,
                                    st.rng, st.model, st.sgd, result,
                                    &prev_subset);
  for (std::size_t epoch = ckpt.start_epoch(); epoch < inputs.train.epochs;
       ++epoch) {
    fault::maybe_crash(inputs.fault_plan, epoch, ckpt.sim_elapsed());
    st.sgd.set_learning_rate(st.schedule.lr_at(epoch));
    const data::Dataset& eds = detail::epoch_data(inputs, epoch);

    // Penultimate features of the float model (substrate-real).
    auto fwd = nn::forward_with_penultimate(st.model, eds.train().features);
    auto centers = selection::kcenter_greedy(fwd.penultimate, k);

    EpochReport report;
    report.epoch = epoch;
    report.subset_size = centers.selected.size();
    report.pool_size = n;
    report.subset_fraction = static_cast<double>(centers.selected.size()) /
                             static_cast<double>(n);
    report.selection_overlap =
        prev_subset.empty()
            ? 1.0
            : detail::selection_overlap(centers.selected, prev_subset);
    report.class_mix = detail::stream_class_mix(inputs, epoch);
    report.train_loss =
        train_one_epoch(st.model, st.sgd, eds.train(), centers.selected, {},
                        inputs.train.batch_size, st.rng);
    report.test_accuracy =
        nn::evaluate(st.model, eds.test().features, eds.test().labels)
            .accuracy;
    prev_subset = centers.selected;

    // Paper-scale cost: full scan to host (link or decode, whichever
    // dominates), GPU feature pass, CPU farthest-first O(n k d_feat)
    // distance work, subset in. The distance term is what makes K-centers
    // the slowest bar in Fig. 4. Sener & Savarese's method is the *robust*
    // k-center: after the greedy seed it runs several rounds of feasibility
    // checks over the distance matrix. We charge kRobustRounds passes over
    // the greedy's O(n k d) distance work, which is what makes K-centers
    // slower end-to-end than full-data training (Fig. 4).
    constexpr double kRobustRounds = 2.5;
    HostSelectionDemand demand;
    demand.scan_records = paper_n;
    demand.subset_records = paper_k;
    demand.record_bytes = sample_bytes;
    demand.train_gflops_per_sample = inputs.model.paper_gflops_per_sample;
    demand.batch_size = inputs.train.batch_size;
    demand.cpu_selection_ops = static_cast<double>(paper_n) *
                               static_cast<double>(paper_k) *
                               static_cast<double>(feat_dim) * 3.0 *
                               kRobustRounds;
    report.cost = perf->host_selection_epoch(system, demand);
    result.interconnect_bytes +=
        static_cast<std::uint64_t>(paper_n) * sample_bytes;

    result.epochs.push_back(std::move(report));
    ckpt.epoch_done(epoch);
  }
  result.finalize();
  return result;
}

RunResult run_random(const PipelineInputs& inputs, double subset_fraction,
                     smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  const std::size_t n = ds.train_size();
  auto st = make_state(inputs);
  auto perf = make_performance_model(inputs.perf_model);

  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(subset_fraction *
                                             static_cast<double>(n))));
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const std::size_t paper_k = detail::paper_count(inputs, subset_fraction);

  RunResult result;
  std::vector<std::size_t> prev_subset;
  detail::CommonCheckpointHook ckpt(inputs, "random", subset_fraction,
                                    st.rng, st.model, st.sgd, result,
                                    &prev_subset);
  for (std::size_t epoch = ckpt.start_epoch(); epoch < inputs.train.epochs;
       ++epoch) {
    fault::maybe_crash(inputs.fault_plan, epoch, ckpt.sim_elapsed());
    st.sgd.set_learning_rate(st.schedule.lr_at(epoch));
    const data::Dataset& eds = detail::epoch_data(inputs, epoch);
    auto subset = selection::random_subset(n, k, st.rng);

    EpochReport report;
    report.epoch = epoch;
    report.subset_size = subset.size();
    report.pool_size = n;
    report.subset_fraction =
        static_cast<double>(subset.size()) / static_cast<double>(n);
    report.selection_overlap =
        prev_subset.empty() ? 1.0
                            : detail::selection_overlap(subset, prev_subset);
    report.class_mix = detail::stream_class_mix(inputs, epoch);
    report.train_loss =
        train_one_epoch(st.model, st.sgd, eds.train(), subset, {},
                        inputs.train.batch_size, st.rng);
    report.test_accuracy =
        nn::evaluate(st.model, eds.test().features, eds.test().labels)
            .accuracy;
    prev_subset = std::move(subset);

    ConventionalDemand demand;
    demand.train_records = paper_k;
    demand.record_bytes = sample_bytes;
    demand.train_gflops_per_sample = inputs.model.paper_gflops_per_sample;
    demand.batch_size = inputs.train.batch_size;
    report.cost = perf->conventional_epoch(system, demand);
    result.interconnect_bytes +=
        static_cast<std::uint64_t>(paper_k) * sample_bytes;

    result.epochs.push_back(std::move(report));
    ckpt.epoch_done(epoch);
  }
  result.finalize();
  return result;
}

}  // namespace nessa::core
