#include "nessa/core/run.hpp"

#include "nessa/data/registry.hpp"
#include "nessa/nn/model.hpp"
#include "nessa/smartssd/host_cache.hpp"

namespace nessa::core {

RunResult run(const PipelineInputs& inputs, const RunConfig& config,
              smartssd::SmartSsdSystem& system) {
  config.validate_or_throw();
  PipelineInputs staged = inputs;
  staged.train = config.train;
  staged.perf_model = config.perf_model;
  staged.fault_plan = config.fault_plan;
  staged.checkpoint = config.checkpoint;
  switch (config.pipeline) {
    case PipelineKind::kNessa: {
      NessaConfig nessa = config.nessa;
      nessa.parallelism = config.parallelism;
      if (config.devices > 1) {
        return run_nessa_multi(staged, nessa,
                               MultiDeviceConfig{config.devices}, system);
      }
      return detail::run_nessa(staged, nessa, system);
    }
    case PipelineKind::kFull:
      return detail::run_full(staged, system);
    case PipelineKind::kFullCached:
      return run_full_cached(staged, smartssd::HostCache{}, system);
    case PipelineKind::kCraig:
      return run_craig(staged, config.nessa.subset_fraction, system);
    case PipelineKind::kKCenter:
      return run_kcenter(staged, config.nessa.subset_fraction, system);
    case PipelineKind::kRandom:
      return run_random(staged, config.nessa.subset_fraction, system);
    case PipelineKind::kLossTopk:
      return run_loss_topk(staged, config.nessa.subset_fraction, system);
  }
  throw std::invalid_argument("core::run: unknown pipeline kind");
}

RunResult run(const RunConfig& config) {
  config.validate_or_throw();
  const data::DatasetInfo& info = data::dataset_info(config.dataset);
  const data::Dataset dataset = data::make_substrate_dataset(
      info, config.dataset_scale, 0, config.train.seed);

  PipelineInputs inputs;
  inputs.dataset = &dataset;
  inputs.info = info;
  inputs.model = nn::model_spec(info.paper_network);
  inputs.train = config.train;

  smartssd::SmartSsdSystem system(config.system);
  return run(inputs, config, system);
}

}  // namespace nessa::core
