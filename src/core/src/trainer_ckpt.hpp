// Core-internal checkpoint codec + session shared by every run driver.
//
// A TrainerSnapshot is everything a trainer needs to continue a run
// bit-identically from an epoch boundary: the substrate model weights
// (nn::save_weights blob), SGD velocity buffers, the trainer's RNG stream
// (plus each Dropout layer's private mask stream), the partial RunResult,
// and — for the NeSSA-family drivers — the candidate pool, loss history,
// carried-forward coreset and degraded-mode deadline basis. The payload is
// opaque bytes to ckpt::Writer/Reader; this codec owns the layout.
//
// A snapshot is bound to its run by a (tag, fingerprint) pair: the tag
// names the driver ("nessa", "full", ...) and the fingerprint hashes the
// run parameters that determine the trajectory (seed, epochs, batch size,
// substrate/paper sizes, architecture, subset knob). Resuming with a
// mismatched configuration is a typed kBadPayload error, never silent
// divergence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nessa/ckpt/config.hpp"
#include "nessa/ckpt/store.hpp"
#include "nessa/core/pipeline.hpp"
#include "nessa/nn/model.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/util/rng.hpp"

namespace nessa::core::detail {

/// State every driver carries across epochs.
struct CommonCkpt {
  util::Rng::State rng;
  std::vector<std::uint8_t> model_blob;        ///< nn::save_weights bytes
  std::vector<std::vector<float>> velocities;  ///< SGD slots, params order
  std::vector<util::Rng::State> dropout_rngs;  ///< Dropout layers, model order
  RunResult partial;                           ///< completed epochs + counters
  /// Simulated-traffic deltas accumulated so far (drivers that derive their
  /// byte totals from system.traffic() at the end of the run; zero for
  /// drivers that accumulate into RunResult directly).
  std::uint64_t traffic_interconnect = 0;
  std::uint64_t traffic_p2p = 0;
  /// The last subset the driver trained on, for the per-epoch selection-
  /// overlap telemetry; empty for drivers that train on everything.
  std::vector<std::size_t> prev_subset;
};

/// Extra state of the NeSSA-family drivers (single- and multi-device).
struct NessaCkpt {
  std::vector<std::size_t> pool;
  std::vector<std::vector<float>> history;     ///< LossHistory windows
  std::vector<std::uint8_t> last_correct;      ///< 0/1 per sample
  double fraction = 0.0;
  double prev_loss = -1.0;
  selection::CoresetResult coreset;            ///< carried-forward subset
  util::SimTime nominal_fpga_phase = 0;        ///< deadline basis
};

struct TrainerSnapshot {
  std::string tag;
  std::uint64_t next_epoch = 0;  ///< first epoch the resumed run executes
  std::uint64_t fingerprint = 0;
  CommonCkpt common;
  bool has_nessa = false;
  NessaCkpt nessa;
};

[[nodiscard]] std::vector<std::uint8_t> encode_trainer_snapshot(
    const TrainerSnapshot& snapshot);
/// Throws ckpt::SnapshotError(kBadPayload / kTruncated) on malformed input.
[[nodiscard]] TrainerSnapshot decode_trainer_snapshot(
    const std::vector<std::uint8_t>& payload);

/// Hash of the run parameters that pin a trajectory. `knob` carries the
/// driver's scalar knob (subset fraction), `extra` any integer knob
/// (device count for the multi-device driver).
[[nodiscard]] std::uint64_t run_fingerprint(std::string_view tag,
                                            const PipelineInputs& inputs,
                                            double knob = 0.0,
                                            std::uint64_t extra = 0);

/// Capture / restore the common state. `restore_common` overwrites the
/// model weights, SGD velocities, the RNG streams (trainer + dropout
/// layers) and the partial RunResult; the model must already have the
/// matching architecture (it is rebuilt deterministically from the seed).
[[nodiscard]] CommonCkpt capture_common(const util::Rng& rng,
                                        nn::Sequential& model,
                                        const nn::Sgd& sgd,
                                        const RunResult& partial);
void restore_common(const CommonCkpt& common, util::Rng& rng,
                    nn::Sequential& model, nn::Sgd& sgd, RunResult& partial);

/// One driver's view of the checkpoint config: owns the Writer (creating
/// the directory eagerly when enabled), performs the resume handshake, and
/// encodes/writes snapshots on the configured cadence.
class CheckpointSession {
 public:
  CheckpointSession(const ckpt::CheckpointConfig& config, std::string tag,
                    std::uint64_t fingerprint);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }

  /// The snapshot to resume from, or nullopt when not resuming. Throws
  /// ckpt::SnapshotError — kNoSnapshot when the directory holds no valid
  /// snapshot, kBadPayload when the newest valid snapshot belongs to a
  /// different driver or run configuration.
  [[nodiscard]] std::optional<TrainerSnapshot> restore();

  /// Should a snapshot be written after `completed` epochs?
  [[nodiscard]] bool due(std::uint64_t completed) const noexcept;

  /// Encode + atomically persist (tag/fingerprint are filled in here).
  void save(TrainerSnapshot snapshot);

 private:
  ckpt::CheckpointConfig config_;
  std::string tag_;
  std::uint64_t fingerprint_ = 0;
  std::optional<ckpt::Writer> writer_;
};

/// Convenience wrapper for drivers whose cross-epoch state is exactly the
/// common section (model, optimizer, rng stream, partial result): performs
/// the resume handshake at construction and writes due snapshots per epoch.
/// Drivers with extra state (the NeSSA family) wire the session directly.
class CommonCheckpointHook {
 public:
  /// `prev_subset`, when given, is captured into / restored from each
  /// snapshot so the selection-overlap telemetry survives resume. It must
  /// outlive the hook (declare it before constructing the hook).
  CommonCheckpointHook(const PipelineInputs& inputs, const char* tag,
                       double knob, util::Rng& rng, nn::Sequential& model,
                       nn::Sgd& sgd, RunResult& result,
                       std::vector<std::size_t>* prev_subset = nullptr)
      : session_(inputs.checkpoint, tag, run_fingerprint(tag, inputs, knob)),
        rng_(rng),
        model_(model),
        sgd_(sgd),
        result_(result),
        prev_subset_(prev_subset) {
    if (auto snap = session_.restore()) {
      restore_common(snap->common, rng_, model_, sgd_, result_);
      if (prev_subset_ != nullptr) {
        *prev_subset_ = std::move(snap->common.prev_subset);
      }
      start_epoch_ = static_cast<std::size_t>(snap->next_epoch);
      for (const EpochReport& report : result_.epochs) {
        sim_elapsed_ += report.cost.total();
      }
    }
  }

  [[nodiscard]] std::size_t start_epoch() const noexcept {
    return start_epoch_;
  }
  [[nodiscard]] util::SimTime sim_elapsed() const noexcept {
    return sim_elapsed_;
  }

  /// Call at the end of each epoch body, after the report was pushed.
  void epoch_done(std::size_t epoch) {
    sim_elapsed_ += result_.epochs.back().cost.total();
    if (!session_.due(epoch + 1)) return;
    TrainerSnapshot snap;
    snap.next_epoch = epoch + 1;
    snap.common = capture_common(rng_, model_, sgd_, result_);
    if (prev_subset_ != nullptr) snap.common.prev_subset = *prev_subset_;
    session_.save(std::move(snap));
  }

 private:
  CheckpointSession session_;
  util::Rng& rng_;
  nn::Sequential& model_;
  nn::Sgd& sgd_;
  RunResult& result_;
  std::vector<std::size_t>* prev_subset_ = nullptr;
  std::size_t start_epoch_ = 0;
  util::SimTime sim_elapsed_ = 0;
};

}  // namespace nessa::core::detail
