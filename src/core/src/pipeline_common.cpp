#include "pipeline_common.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nessa::core {

void RunResult::finalize() {
  if (epochs.empty()) return;
  final_accuracy = epochs.back().test_accuracy;
  best_accuracy = 0.0;
  double frac_sum = 0.0;
  total_time = 0;
  for (const auto& e : epochs) {
    best_accuracy = std::max(best_accuracy, e.test_accuracy);
    frac_sum += e.subset_fraction;
    total_time += e.cost.total();
  }
  mean_subset_fraction = frac_sum / static_cast<double>(epochs.size());
  // Round to the nearest picosecond instead of truncating toward zero —
  // at a few epochs the truncation error is a visible fraction of a tick.
  const auto n = static_cast<SimTime>(epochs.size());
  mean_epoch_time = (total_time + n / 2) / n;
}

namespace detail {

void check_inputs(const PipelineInputs& inputs) {
  if (inputs.dataset == nullptr) {
    throw std::invalid_argument("pipeline: dataset is required");
  }
  if (inputs.train.epochs == 0 || inputs.train.batch_size == 0) {
    throw std::invalid_argument("pipeline: epochs and batch_size must be > 0");
  }
  if (inputs.info.paper_train_size == 0 ||
      inputs.info.stored_bytes_per_sample == 0) {
    throw std::invalid_argument("pipeline: paper-scale metadata is required");
  }
}

double scale_ratio(const PipelineInputs& inputs) {
  return static_cast<double>(inputs.info.paper_train_size) /
         static_cast<double>(inputs.dataset->train_size());
}

std::size_t paper_count(const PipelineInputs& inputs, double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  return static_cast<std::size_t>(
      std::round(fraction *
                 static_cast<double>(inputs.info.paper_train_size)));
}

std::uint64_t paper_macs_per_sample(const PipelineInputs& inputs) {
  return static_cast<std::uint64_t>(
      inputs.model.paper_gflops_per_sample * 1e9 / 2.0);
}

std::uint64_t paper_qweight_bytes(const PipelineInputs& inputs) {
  return static_cast<std::uint64_t>(inputs.model.paper_params_millions * 1e6);
}

nn::Sequential build_target_model(const PipelineInputs& inputs,
                                  util::Rng& rng) {
  if (inputs.model_factory) return inputs.model_factory(rng);
  return nn::build_model(inputs.model, inputs.dataset->feature_dim(),
                         inputs.dataset->num_classes(), rng);
}

}  // namespace detail
}  // namespace nessa::core
