#include "pipeline_common.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "nessa/data/chunked.hpp"

namespace nessa::core {

void RunResult::finalize() {
  if (epochs.empty()) return;
  final_accuracy = epochs.back().test_accuracy;
  best_accuracy = 0.0;
  double frac_sum = 0.0;
  total_time = 0;
  for (const auto& e : epochs) {
    best_accuracy = std::max(best_accuracy, e.test_accuracy);
    frac_sum += e.subset_fraction;
    total_time += e.cost.total();
  }
  mean_subset_fraction = frac_sum / static_cast<double>(epochs.size());
  // Round to the nearest picosecond instead of truncating toward zero —
  // at a few epochs the truncation error is a visible fraction of a tick.
  const auto n = static_cast<SimTime>(epochs.size());
  mean_epoch_time = (total_time + n / 2) / n;
}

namespace detail {

void check_inputs(const PipelineInputs& inputs) {
  if (inputs.dataset == nullptr) {
    throw std::invalid_argument("pipeline: dataset is required");
  }
  if (inputs.train.epochs == 0 || inputs.train.batch_size == 0) {
    throw std::invalid_argument("pipeline: epochs and batch_size must be > 0");
  }
  if (inputs.info.paper_train_size == 0 ||
      inputs.info.stored_bytes_per_sample == 0) {
    throw std::invalid_argument("pipeline: paper-scale metadata is required");
  }
  if (inputs.stream != nullptr && inputs.dataset != &inputs.stream->base()) {
    throw std::invalid_argument(
        "pipeline: with a scenario stream, dataset must be &stream->base()");
  }
}

const data::Dataset& epoch_data(const PipelineInputs& inputs,
                                std::size_t epoch) {
  return inputs.stream != nullptr ? inputs.stream->at(epoch)
                                  : *inputs.dataset;
}

double selection_overlap(std::span<const std::size_t> current,
                         std::span<const std::size_t> previous) {
  if (current.empty()) return 1.0;
  std::unordered_set<std::size_t> prev(previous.begin(), previous.end());
  std::size_t shared = 0;
  for (const std::size_t idx : current) shared += prev.count(idx);
  return static_cast<double>(shared) / static_cast<double>(current.size());
}

std::vector<std::uint32_t> stream_class_mix(const PipelineInputs& inputs,
                                            std::size_t epoch) {
  std::vector<std::uint32_t> mix;
  if (inputs.stream == nullptr) return mix;
  const auto histogram = inputs.stream->class_histogram(epoch);
  mix.reserve(histogram.size());
  for (const std::size_t count : histogram) {
    mix.push_back(static_cast<std::uint32_t>(count));
  }
  return mix;
}

ChunkedScore score_pool(SelectionModel& kernel, const data::Split& split,
                        std::span<const std::size_t> pool, bool scaled,
                        std::size_t batch_size, std::size_t chunk_samples,
                        std::size_t stored_bytes_per_sample,
                        const data::ChunkIntegrity* integrity) {
  ChunkedScore out;
  if (chunk_samples == 0 || pool.empty()) {
    out.emb = kernel.score(split, pool, scaled, batch_size);
    return out;
  }

  data::SplitStore store(split, stored_bytes_per_sample);
  data::ChunkedDataset chunks(store, chunk_samples);
  if (integrity != nullptr) {
    chunks.enable_integrity(integrity->policy);
    chunks.set_corruptor(integrity->corruptor);
  }

  out.emb.losses.resize(pool.size());
  out.emb.correct.resize(pool.size());
  std::size_t classes = 0;

  // Walk the pool in EXACTLY the monolithic batch order, fetching chunks as
  // the walk crosses chunk boundaries. Batch composition must be preserved
  // — the int8 kernel quantizes activations per batch, so regrouping rows
  // by chunk would change the math. With an ascending pool (the drivers'
  // invariant) every chunk still holding pool members is fetched exactly
  // once, and fully biased-out chunks are never fetched. Rows landing in a
  // quarantined chunk are excluded (marked in out.excluded, zeros in the
  // outputs); batches form over the surviving rows, so with nothing
  // quarantined the grouping — and the math — is unchanged.
  const std::size_t dim = split.dim();
  constexpr auto kNone = static_cast<std::size_t>(-1);
  std::size_t current = kNone;  // chunk held in the one-deep window
  data::ChunkView view;
  data::Split staging;
  std::vector<float> staged;
  std::vector<std::int32_t> staged_labels;
  std::vector<std::size_t> staged_pos;  // output position per staged row
  staged.reserve(batch_size * dim);
  std::vector<std::size_t> local;

  const auto flush = [&] {
    const std::size_t n = staged_pos.size();
    if (n == 0) return;
    staging.features = tensor::Tensor({n, dim});
    std::copy_n(staged.data(), n * dim, staging.features.data());
    staging.labels.assign(staged_labels.begin(), staged_labels.end());
    local.resize(n);
    for (std::size_t i = 0; i < n; ++i) local[i] = i;
    QEmbeddings part = kernel.score(staging, local, scaled, batch_size);
    if (classes == 0 && part.embeddings.rank() == 2) {
      classes = part.embeddings.cols();
      out.emb.embeddings = tensor::Tensor({pool.size(), classes});
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = staged_pos[i];
      out.emb.losses[pos] = part.losses[i];
      out.emb.correct[pos] = part.correct[i];
      std::copy_n(part.embeddings.data() + i * classes, classes,
                  out.emb.embeddings.data() + pos * classes);
    }
    staged.clear();
    staged_labels.clear();
    staged_pos.clear();
  };

  for (std::size_t pos = 0; pos < pool.size(); ++pos) {
    const std::size_t row = pool[pos];
    const std::size_t chunk = chunks.chunk_of(row);
    if (chunk != current) {  // refetches of a revisited chunk are charged
      view = chunks.fetch(chunk);
      current = chunk;
    }
    if (view.quarantined) {
      if (out.excluded.empty()) out.excluded.assign(pool.size(), 0);
      out.excluded[pos] = 1;
      continue;
    }
    const std::size_t offset = row - view.begin;
    staged.insert(staged.end(), view.samples->features.data() + offset * dim,
                  view.samples->features.data() + (offset + 1) * dim);
    staged_labels.push_back(view.samples->labels[offset]);
    staged_pos.push_back(pos);
    if (staged_pos.size() == batch_size) flush();
  }
  flush();
  out.chunk_fetches = chunks.fetches();
  out.integrity = chunks.integrity_stats();
  return out;
}

double scale_ratio(const PipelineInputs& inputs) {
  return static_cast<double>(inputs.info.paper_train_size) /
         static_cast<double>(inputs.dataset->train_size());
}

std::size_t paper_count(const PipelineInputs& inputs, double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  return static_cast<std::size_t>(
      std::round(fraction *
                 static_cast<double>(inputs.info.paper_train_size)));
}

std::uint64_t paper_macs_per_sample(const PipelineInputs& inputs) {
  return static_cast<std::uint64_t>(
      inputs.model.paper_gflops_per_sample * 1e9 / 2.0);
}

std::uint64_t paper_qweight_bytes(const PipelineInputs& inputs) {
  return static_cast<std::uint64_t>(inputs.model.paper_params_millions * 1e6);
}

nn::Sequential build_target_model(const PipelineInputs& inputs,
                                  util::Rng& rng) {
  if (inputs.model_factory) return inputs.model_factory(rng);
  return nn::build_model(inputs.model, inputs.dataset->feature_dim(),
                         inputs.dataset->num_classes(), rng);
}

}  // namespace detail
}  // namespace nessa::core
