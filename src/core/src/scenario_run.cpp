#include "nessa/core/scenario_run.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "nessa/core/report.hpp"
#include "nessa/data/registry.hpp"
#include "nessa/nn/model.hpp"

namespace nessa::core {

ScenarioRunResult run_scenario(const ScenarioRunConfig& config) {
  if (config.pipelines.empty()) {
    throw std::invalid_argument("run_scenario: no pipelines configured");
  }
  const auto stream = data::scenario::make_scenario(config.scenario);
  const data::DatasetInfo& info = data::dataset_info(config.dataset);

  PipelineInputs inputs;
  inputs.dataset = &stream->base();
  inputs.stream = stream.get();
  inputs.info = info;
  inputs.model = nn::model_spec(info.paper_network);
  inputs.train = config.train;

  ScenarioRunResult out;
  out.scenario = config.scenario;
  out.chunk_samples = config.train.chunk_samples;
  for (const PipelineKind kind : config.pipelines) {
    RunConfig rc;
    rc.dataset = config.dataset;
    rc.pipeline = kind;
    rc.train = config.train;
    rc.nessa = config.nessa;
    rc.perf_model = config.perf_model;
    rc.system = config.system;
    smartssd::SmartSsdSystem system(config.system);
    out.outcomes.push_back({kind, run(inputs, rc, system)});
  }
  return out;
}

void write_scenario_summary_json(const ScenarioRunResult& result,
                                 std::ostream& os) {
  const auto& sc = result.scenario;
  os << "{\n";
  os << "  \"scenario\": \""
     << data::scenario::to_string(sc.kind) << "\",\n";
  os << "  \"seed\": " << sc.seed << ",\n";
  os << "  \"train_size\": " << sc.train_size << ",\n";
  os << "  \"num_classes\": " << sc.num_classes << ",\n";
  os << "  \"chunk_samples\": " << result.chunk_samples << ",\n";
  os << "  \"pipelines\": [\n";
  for (std::size_t p = 0; p < result.outcomes.size(); ++p) {
    const auto& outcome = result.outcomes[p];
    const RunResult& run = outcome.result;
    std::uint64_t chunk_fetches = 0;
    double overlap_sum = 0.0;
    for (const auto& e : run.epochs) {
      chunk_fetches += e.chunk_fetches;
      overlap_sum += e.selection_overlap;
    }
    const double mean_overlap =
        run.epochs.empty() ? 1.0
                           : overlap_sum / static_cast<double>(
                                               run.epochs.size());
    os << "    {\n";
    os << "      \"pipeline\": \"" << to_string(outcome.pipeline) << "\",\n";
    os << "      \"final_accuracy\": " << run.final_accuracy << ",\n";
    os << "      \"best_accuracy\": " << run.best_accuracy << ",\n";
    os << "      \"mean_subset_fraction\": " << run.mean_subset_fraction
       << ",\n";
    os << "      \"total_seconds\": " << util::to_seconds(run.total_time)
       << ",\n";
    os << "      \"chunk_fetches\": " << chunk_fetches << ",\n";
    os << "      \"mean_selection_overlap\": " << mean_overlap << ",\n";
    os << "      \"epochs\": [\n";
    for (std::size_t e = 0; e < run.epochs.size(); ++e) {
      const auto& epoch = run.epochs[e];
      os << "        {\"epoch\": " << epoch.epoch
         << ", \"test_accuracy\": " << epoch.test_accuracy
         << ", \"subset_fraction\": " << epoch.subset_fraction
         << ", \"selection_overlap\": " << epoch.selection_overlap
         << ", \"chunk_fetches\": " << epoch.chunk_fetches;
      os << ", \"class_mix\": [";
      for (std::size_t c = 0; c < epoch.class_mix.size(); ++c) {
        os << (c > 0 ? ", " : "") << epoch.class_mix[c];
      }
      os << "]}" << (e + 1 < run.epochs.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (p + 1 < result.outcomes.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  if (!os) {
    throw std::runtime_error("write_scenario_summary_json: stream failure");
  }
}

void write_scenario_summary_json_file(const ScenarioRunResult& result,
                                      const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    throw std::runtime_error("write_scenario_summary_json_file: cannot open " +
                             path);
  }
  write_scenario_summary_json(result, os);
}

}  // namespace nessa::core
