// Multi-SmartSSD NeSSA (paper §5 future work, built on GreeDi [42]):
//
//   shard pool across D devices
//     -> per device (parallel): P2P scan + quantized forward + local
//        facility-location round over the shard
//     -> local winners' embeddings ship to the merge device (int8, tiny)
//     -> merge device re-selects k over the union
//     -> subset to GPU, train, quantized weights broadcast to all devices
//
// Timing: the per-device phase takes the max over devices (they run in
// parallel); merge communication and the weight broadcast scale with D.
// Subset biasing and dynamic sizing operate on the global pool exactly as
// in the single-device trainer.
#include <algorithm>
#include <cmath>

#include "nessa/ckpt/errors.hpp"
#include "nessa/core/near_storage.hpp"
#include "nessa/core/pipeline.hpp"
#include "nessa/core/train_utils.hpp"
#include "nessa/fault/crash.hpp"
#include "nessa/nn/metrics.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/quant/qmodel.hpp"
#include "nessa/selection/greedi.hpp"
#include "nessa/util/stats.hpp"
#include "pipeline_common.hpp"
#include "trainer_ckpt.hpp"

namespace nessa::core {

RunResult run_nessa_multi(const PipelineInputs& inputs,
                          const NessaConfig& config,
                          const MultiDeviceConfig& multi,
                          smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  if (multi.devices == 0) {
    throw std::invalid_argument("run_nessa_multi: need at least one device");
  }
  const data::Dataset& ds = *inputs.dataset;
  const std::size_t n = ds.train_size();
  const std::size_t devices = multi.devices;

  util::Rng rng(inputs.train.seed);
  auto model = detail::build_target_model(inputs, rng);
  auto qmodel = quant::QuantizedMlp::from_model(model);
  nn::Sgd sgd(inputs.train.sgd);
  auto schedule = inputs.train.scale_lr_schedule
                      ? nn::StepLrSchedule::paper_scaled(inputs.train.epochs)
                      : nn::StepLrSchedule::paper_default();

  std::vector<std::size_t> pool = iota_indices(n);
  LossHistory history(n, config.loss_window_epochs);
  std::vector<bool> last_correct(n, false);

  double fraction = config.subset_fraction;
  double prev_loss = -1.0;

  auto perf = make_performance_model(inputs.perf_model);
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const double ratio = detail::scale_ratio(inputs);
  const std::uint64_t macs_per_sample = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(detail::paper_macs_per_sample(inputs)) *
             config.selection_proxy_factor));
  const smartssd::TrafficStats traffic0 = system.traffic();

  selection::GreediConfig greedi;
  greedi.num_partitions = devices;
  greedi.driver.greedy = config.greedy;
  greedi.driver.stochastic_epsilon = config.stochastic_epsilon;
  greedi.driver.per_class = true;
  greedi.driver.partition_quota = config.partition_quota;
  greedi.driver.parallelism = config.parallelism;

  RunResult result;

  // ---- checkpoint/restore (see trainer_ckpt.hpp). The multi-device
  // driver reselects every epoch, so no coreset is carried forward — the
  // nessa section travels with an empty coreset.
  detail::CheckpointSession ckpt_session(
      inputs.checkpoint, "multi",
      detail::run_fingerprint("multi", inputs, config.subset_fraction,
                              devices));
  std::size_t start_epoch = 0;
  util::SimTime sim_elapsed = 0;
  std::uint64_t base_interconnect = 0;
  std::uint64_t base_p2p = 0;
  std::vector<std::size_t> prev_subset;
  if (auto snap = ckpt_session.restore()) {
    if (!snap->has_nessa || snap->nessa.last_correct.size() != n ||
        snap->nessa.history.size() != n) {
      throw ckpt::SnapshotError(
          ckpt::SnapshotFault::kBadPayload,
          "snapshot does not match the multi driver's dataset");
    }
    for (std::size_t idx : snap->nessa.pool) {
      if (idx >= n) {
        throw ckpt::SnapshotError(ckpt::SnapshotFault::kBadPayload,
                                  "snapshot pool index out of range");
      }
    }
    detail::restore_common(snap->common, rng, model, sgd, result);
    pool = std::move(snap->nessa.pool);
    history.restore(std::move(snap->nessa.history));
    for (std::size_t i = 0; i < n; ++i) {
      last_correct[i] = snap->nessa.last_correct[i] != 0;
    }
    fraction = snap->nessa.fraction;
    prev_loss = snap->nessa.prev_loss;
    prev_subset = std::move(snap->common.prev_subset);
    base_interconnect = snap->common.traffic_interconnect;
    base_p2p = snap->common.traffic_p2p;
    start_epoch = static_cast<std::size_t>(snap->next_epoch);
    // The quantized kernel was built from the deterministic initial
    // weights; bring it to the checkpointed state exactly as the
    // uninterrupted run did.
    if (config.weight_feedback && start_epoch > 0) qmodel.refresh_from(model);
    for (const EpochReport& report : result.epochs) {
      sim_elapsed += report.cost.total();
    }
  }

  for (std::size_t epoch = start_epoch; epoch < inputs.train.epochs;
       ++epoch) {
    fault::maybe_crash(inputs.fault_plan, epoch, sim_elapsed);
    sgd.set_learning_rate(schedule.lr_at(epoch));
    greedi.driver.seed = inputs.train.seed * 6151 + epoch;
    const data::Dataset& eds = detail::epoch_data(inputs, epoch);

    // ---- distributed near-storage selection --------------------------
    auto emb = compute_q_embeddings(qmodel, eds.train(), pool,
                                    config.scaled_embeddings,
                                    inputs.train.batch_size);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      history.record(pool[i], emb.losses[i]);
      last_correct[pool[i]] = emb.correct[i];
    }

    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(fraction *
                                               static_cast<double>(n))));
    std::vector<std::int32_t> pool_labels(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool_labels[i] = eds.train().labels[pool[i]];
    }
    auto selected = selection::greedi_select(emb.embeddings, pool_labels,
                                             pool, std::min(k, pool.size()),
                                             greedi);

    // ---- GPU subset training ------------------------------------------
    std::vector<double> weights(selected.weights.begin(),
                                selected.weights.end());
    EpochReport report;
    report.epoch = epoch;
    report.subset_size = selected.indices.size();
    report.pool_size = pool.size();
    report.subset_fraction = static_cast<double>(selected.indices.size()) /
                             static_cast<double>(n);
    report.selection_overlap =
        prev_subset.empty()
            ? 1.0
            : detail::selection_overlap(selected.indices, prev_subset);
    report.class_mix = detail::stream_class_mix(inputs, epoch);
    report.train_loss =
        train_one_epoch(model, sgd, eds.train(), selected.indices, weights,
                        inputs.train.batch_size, rng);
    report.test_accuracy =
        nn::evaluate(model, eds.test().features, eds.test().labels).accuracy;
    prev_subset = selected.indices;

    if (config.weight_feedback) {
      qmodel.refresh_from(model);
    }

    // ---- paper-scale costing -------------------------------------------
    const double pool_fraction =
        static_cast<double>(pool.size()) / static_cast<double>(n);
    const std::size_t paper_pool = detail::paper_count(inputs, pool_fraction);
    const std::size_t paper_subset =
        detail::paper_count(inputs, report.subset_fraction);
    const std::size_t shard = (paper_pool + devices - 1) / devices;

    // Local phase: quantized forwards + the slowest device's local greedy.
    std::uint64_t worst_local_ops = 0;
    for (const auto& local : selected.local) {
      worst_local_ops = std::max(
          worst_local_ops, local.similarity_ops + local.greedy_ops);
    }
    const double op_ratio =
        config.partition_quota > 0 ? ratio : ratio * ratio;

    // Merge: local winners' int8 embeddings + ids cross the interconnect
    // to the merge device, which re-selects over the union.
    const std::size_t paper_union = std::min<std::size_t>(
        paper_pool,
        static_cast<std::size_t>(static_cast<double>(selected.union_size) *
                                 ratio));
    const double merge_scale =
        selected.union_size > 0
            ? std::pow(static_cast<double>(paper_union) /
                           static_cast<double>(selected.union_size),
                       2.0)
            : 0.0;

    MultiEpochDemand demand;
    demand.devices = devices;
    demand.shard_records = shard;
    demand.subset_records = paper_subset;
    demand.record_bytes = sample_bytes;
    demand.shard_forward_macs =
        static_cast<std::uint64_t>(shard) * macs_per_sample;
    demand.local_selection_ops = static_cast<std::uint64_t>(
        static_cast<double>(worst_local_ops) * op_ratio);
    demand.merge_union_bytes = static_cast<std::uint64_t>(paper_union) *
                               (ds.num_classes() + sizeof(std::uint64_t));
    demand.merge_ops = static_cast<std::uint64_t>(
        static_cast<double>(selected.merge.similarity_ops +
                            selected.merge.greedy_ops) *
        merge_scale);
    demand.train_gflops_per_sample = inputs.model.paper_gflops_per_sample;
    demand.batch_size = inputs.train.batch_size;
    demand.feedback_bytes_per_device =
        config.weight_feedback ? detail::paper_qweight_bytes(inputs) : 0;
    report.cost = perf->multi_epoch(system, demand);

    // ---- subset biasing + dynamic sizing (global pool) -----------------
    if (config.subset_biasing && epoch + 1 < inputs.train.epochs &&
        (epoch + 1) % config.drop_interval_epochs == 0) {
      std::vector<double> means(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        means[i] = history.windowed_mean(pool[i]);
      }
      const double threshold =
          util::percentile_of(means, config.drop_quantile * 100.0);
      const std::size_t min_pool = std::max<std::size_t>(
          k, static_cast<std::size_t>(config.min_pool_factor *
                                      static_cast<double>(k)));
      std::vector<std::size_t> kept;
      kept.reserve(pool.size());
      std::size_t dropped = 0;
      const std::size_t max_drop =
          pool.size() > min_pool ? pool.size() - min_pool : 0;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const bool learned = means[i] <= threshold && last_correct[pool[i]];
        if (learned && dropped < max_drop) {
          ++dropped;
        } else {
          kept.push_back(pool[i]);
        }
      }
      pool = std::move(kept);
    }
    if (config.dynamic_sizing) {
      if (prev_loss > 0.0 && report.train_loss > 0.0) {
        const double drop = (prev_loss - report.train_loss) / prev_loss;
        if (drop > config.shrink_rate) {
          fraction = std::max(config.min_subset_fraction,
                              fraction * (1.0 - config.shrink_step));
        } else if (drop < 0.0) {
          fraction = std::min(config.subset_fraction,
                              fraction / (1.0 - config.shrink_step));
        }
      }
      prev_loss = report.train_loss;
    }

    sim_elapsed += report.cost.total();
    result.epochs.push_back(std::move(report));

    if (ckpt_session.due(epoch + 1)) {
      detail::TrainerSnapshot snap;
      snap.next_epoch = epoch + 1;
      snap.common = detail::capture_common(rng, model, sgd, result);
      snap.common.traffic_interconnect =
          base_interconnect +
          (system.traffic().interconnect_bytes - traffic0.interconnect_bytes);
      snap.common.traffic_p2p =
          base_p2p + (system.traffic().p2p_bytes - traffic0.p2p_bytes);
      snap.common.prev_subset = prev_subset;
      snap.has_nessa = true;
      snap.nessa.pool = pool;
      snap.nessa.history = history.windows();
      snap.nessa.last_correct.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        snap.nessa.last_correct[i] = last_correct[i] ? 1 : 0;
      }
      snap.nessa.fraction = fraction;
      snap.nessa.prev_loss = prev_loss;
      ckpt_session.save(std::move(snap));
    }
  }

  result.interconnect_bytes =
      base_interconnect +
      (system.traffic().interconnect_bytes - traffic0.interconnect_bytes);
  result.p2p_bytes =
      base_p2p + (system.traffic().p2p_bytes - traffic0.p2p_bytes);
  result.finalize();
  return result;
}

}  // namespace nessa::core
