#include "nessa/core/near_storage.hpp"

#include <algorithm>
#include <stdexcept>

#include "nessa/nn/embedding.hpp"
#include "nessa/nn/loss.hpp"
#include "nessa/tensor/ops.hpp"

namespace nessa::core {

QEmbeddings compute_q_embeddings(const quant::QuantizedMlp& qmodel,
                                 const data::Split& split,
                                 std::span<const std::size_t> pool,
                                 bool scaled, std::size_t batch_size) {
  using tensor::Tensor;
  const std::size_t n = pool.size();
  const std::size_t dim = split.dim();
  if (batch_size == 0) batch_size = std::max<std::size_t>(1, n);
  QEmbeddings out;
  out.losses.resize(n);
  out.correct.resize(n);

  nn::SoftmaxCrossEntropy loss_fn;
  std::size_t classes = 0;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    Tensor batch({count, dim});
    std::vector<nn::Label> labels(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = pool[start + i];
      std::copy_n(split.features.data() + row * dim, dim,
                  batch.data() + i * dim);
      labels[i] = split.labels[row];
    }
    auto fwd = qmodel.forward_with_penultimate(batch);
    if (classes == 0) {
      classes = fwd.logits.cols();
      out.embeddings = Tensor({n, classes});
    }
    auto loss = loss_fn.forward(fwd.logits, labels);
    for (std::size_t i = 0; i < count; ++i) {
      out.losses[start + i] = loss.example_losses[i];
      float scale = 1.0f;
      if (scaled) {
        scale = std::max(tensor::l2_norm(fwd.penultimate.row(i)), 1e-6f);
      }
      const float* probs = loss.probs.data() + i * classes;
      std::size_t argmax = 0;
      for (std::size_t c = 1; c < classes; ++c) {
        if (probs[c] > probs[argmax]) argmax = c;
      }
      out.correct[start + i] = static_cast<nn::Label>(argmax) == labels[i];
      float* dst = out.embeddings.data() + (start + i) * classes;
      for (std::size_t c = 0; c < classes; ++c) {
        const float onehot =
            static_cast<nn::Label>(c) == labels[i] ? 1.0f : 0.0f;
        dst[c] = (probs[c] - onehot) * scale;
      }
    }
  }
  return out;
}

namespace {

class QuantizedSelectionModel final : public SelectionModel {
 public:
  explicit QuantizedSelectionModel(const nn::Sequential& target)
      : qmodel_(quant::QuantizedMlp::from_model(target)) {}

  QEmbeddings score(const data::Split& split,
                    std::span<const std::size_t> pool, bool scaled,
                    std::size_t batch_size) override {
    return compute_q_embeddings(qmodel_, split, pool, scaled, batch_size);
  }

  void refresh(const nn::Sequential& target) override {
    qmodel_.refresh_from(target);
  }

  std::size_t payload_bytes() const override {
    return qmodel_.payload_bytes();
  }

  double mac_cost_factor() const override { return 1.0; }

 private:
  quant::QuantizedMlp qmodel_;
};

class FloatSelectionModel final : public SelectionModel {
 public:
  explicit FloatSelectionModel(const nn::Sequential& target)
      : model_(target.clone()) {}

  QEmbeddings score(const data::Split& split,
                    std::span<const std::size_t> pool, bool scaled,
                    std::size_t batch_size) override {
    using tensor::Tensor;
    const std::size_t n = pool.size();
    const std::size_t dim = split.dim();
    if (batch_size == 0) batch_size = std::max<std::size_t>(1, n);
    QEmbeddings out;
    out.losses.resize(n);
    out.correct.resize(n);

    nn::SoftmaxCrossEntropy loss_fn;
    std::size_t classes = 0;
    for (std::size_t start = 0; start < n; start += batch_size) {
      const std::size_t count = std::min(batch_size, n - start);
      Tensor batch({count, dim});
      std::vector<nn::Label> labels(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t row = pool[start + i];
        std::copy_n(split.features.data() + row * dim, dim,
                    batch.data() + i * dim);
        labels[i] = split.labels[row];
      }
      auto fwd = nn::forward_with_penultimate(model_, batch);
      if (classes == 0) {
        classes = fwd.logits.cols();
        out.embeddings = Tensor({n, classes});
      }
      auto loss = loss_fn.forward(fwd.logits, labels);
      for (std::size_t i = 0; i < count; ++i) {
        out.losses[start + i] = loss.example_losses[i];
        float scale = 1.0f;
        if (scaled) {
          scale = std::max(tensor::l2_norm(fwd.penultimate.row(i)), 1e-6f);
        }
        const float* probs = loss.probs.data() + i * classes;
        std::size_t argmax = 0;
        for (std::size_t c = 1; c < classes; ++c) {
          if (probs[c] > probs[argmax]) argmax = c;
        }
        out.correct[start + i] =
            static_cast<nn::Label>(argmax) == labels[i];
        float* dst = out.embeddings.data() + (start + i) * classes;
        for (std::size_t c = 0; c < classes; ++c) {
          const float onehot =
              static_cast<nn::Label>(c) == labels[i] ? 1.0f : 0.0f;
          dst[c] = (probs[c] - onehot) * scale;
        }
      }
    }
    return out;
  }

  void refresh(const nn::Sequential& target) override {
    model_.load_params_from(target);
  }

  std::size_t payload_bytes() const override {
    return model_.parameter_count() * sizeof(float);
  }

  double mac_cost_factor() const override { return 2.0; }

 private:
  nn::Sequential model_;
};

}  // namespace

std::unique_ptr<SelectionModel> make_quantized_selection_model(
    const nn::Sequential& target) {
  return std::make_unique<QuantizedSelectionModel>(target);
}

std::unique_ptr<SelectionModel> make_float_selection_model(
    const nn::Sequential& target) {
  return std::make_unique<FloatSelectionModel>(target);
}

std::unique_ptr<SelectionModel> make_selection_model(
    const nn::Sequential& target) {
  try {
    return make_quantized_selection_model(target);
  } catch (const std::invalid_argument&) {
    return make_float_selection_model(target);
  }
}

}  // namespace nessa::core
