#include "nessa/core/report.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nessa::core {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(ch);
          out += hex.str();
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void write_json_report(const RunMetadata& meta, const RunResult& run,
                       std::ostream& os) {
  auto secs = [](util::SimTime t) { return util::to_seconds(t); };
  os << "{\n";
  os << "  \"pipeline\": \"" << json_escape(meta.pipeline) << "\",\n";
  os << "  \"dataset\": \"" << json_escape(meta.dataset) << "\",\n";
  os << "  \"network\": \"" << json_escape(meta.network) << "\",\n";
  os << "  \"gpu\": \"" << json_escape(meta.gpu) << "\",\n";
  os << "  \"devices\": " << meta.devices << ",\n";
  os << "  \"seed\": " << meta.seed << ",\n";
  os << "  \"final_accuracy\": " << run.final_accuracy << ",\n";
  os << "  \"best_accuracy\": " << run.best_accuracy << ",\n";
  os << "  \"mean_subset_fraction\": " << run.mean_subset_fraction << ",\n";
  os << "  \"mean_epoch_seconds\": " << secs(run.mean_epoch_time) << ",\n";
  os << "  \"total_seconds\": " << secs(run.total_time) << ",\n";
  os << "  \"interconnect_bytes\": " << run.interconnect_bytes << ",\n";
  os << "  \"p2p_bytes\": " << run.p2p_bytes << ",\n";
  os << "  \"epochs\": [\n";
  for (std::size_t e = 0; e < run.epochs.size(); ++e) {
    const auto& epoch = run.epochs[e];
    os << "    {\"epoch\": " << epoch.epoch
       << ", \"test_accuracy\": " << epoch.test_accuracy
       << ", \"train_loss\": " << epoch.train_loss
       << ", \"subset_fraction\": " << epoch.subset_fraction
       << ", \"pool_size\": " << epoch.pool_size
       << ", \"scan_s\": " << secs(epoch.cost.storage_scan)
       << ", \"selection_s\": " << secs(epoch.cost.selection)
       << ", \"transfer_s\": " << secs(epoch.cost.subset_transfer)
       << ", \"gpu_s\": " << secs(epoch.cost.gpu_compute)
       << ", \"feedback_s\": " << secs(epoch.cost.feedback)
       << ", \"epoch_s\": " << secs(epoch.cost.total())
       << ", \"selection_overlap\": " << epoch.selection_overlap
       << ", \"chunk_fetches\": " << epoch.chunk_fetches;
    if (!epoch.class_mix.empty()) {
      os << ", \"class_mix\": [";
      for (std::size_t c = 0; c < epoch.class_mix.size(); ++c) {
        os << (c > 0 ? ", " : "") << epoch.class_mix[c];
      }
      os << "]";
    }
    os << "}" << (e + 1 < run.epochs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  if (!os) throw std::runtime_error("write_json_report: stream failure");
}

void write_json_report_file(const RunMetadata& meta, const RunResult& run,
                            const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    throw std::runtime_error("write_json_report_file: cannot open " + path);
  }
  write_json_report(meta, run, os);
}

}  // namespace nessa::core
