#include "trainer_ckpt.hpp"

#include <sstream>
#include <utility>

#include "nessa/ckpt/buffer.hpp"
#include "nessa/nn/dropout.hpp"
#include "nessa/nn/serialize.hpp"
#include "nessa/telemetry/telemetry.hpp"

namespace nessa::core::detail {

namespace {

void put_rng_state(ckpt::BufWriter& w, const util::Rng::State& s) {
  for (std::uint64_t word : s.words) w.u64(word);
  w.f64(s.gaussian_spare);
  w.boolean(s.gaussian_cached);
}

util::Rng::State get_rng_state(ckpt::BufReader& r) {
  util::Rng::State s;
  for (auto& word : s.words) word = r.u64();
  s.gaussian_spare = r.f64();
  s.gaussian_cached = r.boolean();
  return s;
}

void put_sim_time(ckpt::BufWriter& w, util::SimTime t) {
  w.u64(static_cast<std::uint64_t>(t));
}

util::SimTime get_sim_time(ckpt::BufReader& r) {
  return static_cast<util::SimTime>(r.u64());
}

void put_result(ckpt::BufWriter& w, const RunResult& result) {
  w.u64(result.epochs.size());
  for (const EpochReport& e : result.epochs) {
    w.u64(e.epoch);
    w.f64(e.train_loss);
    w.f64(e.test_accuracy);
    w.u64(e.subset_size);
    w.u64(e.pool_size);
    w.f64(e.subset_fraction);
    put_sim_time(w, e.cost.storage_scan);
    put_sim_time(w, e.cost.selection);
    put_sim_time(w, e.cost.subset_transfer);
    put_sim_time(w, e.cost.gpu_compute);
    put_sim_time(w, e.cost.feedback);
    w.boolean(e.cost.selection_overlapped);
    put_sim_time(w, e.cost.modeled_total);
    w.f64(e.selection_overlap);
    w.u64(e.chunk_fetches);
    w.u64(e.class_mix.size());
    for (std::uint32_t count : e.class_mix) w.u64(count);
  }
  // Derived aggregates (final/best accuracy, time totals) are recomputed by
  // finalize(); only the monotone counters need to survive.
  w.u64(result.interconnect_bytes);
  w.u64(result.p2p_bytes);
  w.u64(result.fault_fallback_epochs);
  w.u64(result.fault_stale_epochs);
}

RunResult get_result(ckpt::BufReader& r) {
  RunResult result;
  const std::uint64_t n = r.u64();
  result.epochs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    EpochReport e;
    e.epoch = static_cast<std::size_t>(r.u64());
    e.train_loss = r.f64();
    e.test_accuracy = r.f64();
    e.subset_size = static_cast<std::size_t>(r.u64());
    e.pool_size = static_cast<std::size_t>(r.u64());
    e.subset_fraction = r.f64();
    e.cost.storage_scan = get_sim_time(r);
    e.cost.selection = get_sim_time(r);
    e.cost.subset_transfer = get_sim_time(r);
    e.cost.gpu_compute = get_sim_time(r);
    e.cost.feedback = get_sim_time(r);
    e.cost.selection_overlapped = r.boolean();
    e.cost.modeled_total = get_sim_time(r);
    e.selection_overlap = r.f64();
    e.chunk_fetches = r.u64();
    const std::uint64_t classes = r.u64();
    e.class_mix.reserve(static_cast<std::size_t>(classes));
    for (std::uint64_t c = 0; c < classes; ++c) {
      e.class_mix.push_back(static_cast<std::uint32_t>(r.u64()));
    }
    result.epochs.push_back(std::move(e));
  }
  result.interconnect_bytes = r.u64();
  result.p2p_bytes = r.u64();
  result.fault_fallback_epochs = r.u64();
  result.fault_stale_epochs = r.u64();
  return result;
}

void put_float_table(ckpt::BufWriter& w,
                     const std::vector<std::vector<float>>& table) {
  w.u64(table.size());
  for (const auto& row : table) w.f32_vec(row);
}

std::vector<std::vector<float>> get_float_table(ckpt::BufReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::vector<float>> table;
  table.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) table.push_back(r.f32_vec());
  return table;
}

std::uint64_t mix(std::uint64_t state, std::uint64_t value) {
  std::uint64_t s = state ^ value;
  return util::splitmix64(s);
}

}  // namespace

std::vector<std::uint8_t> encode_trainer_snapshot(
    const TrainerSnapshot& snapshot) {
  ckpt::BufWriter w;
  w.str(snapshot.tag);
  w.u64(snapshot.next_epoch);
  w.u64(snapshot.fingerprint);

  put_rng_state(w, snapshot.common.rng);
  w.blob(snapshot.common.model_blob);
  put_float_table(w, snapshot.common.velocities);
  w.u64(snapshot.common.dropout_rngs.size());
  for (const auto& s : snapshot.common.dropout_rngs) put_rng_state(w, s);
  put_result(w, snapshot.common.partial);
  w.u64(snapshot.common.traffic_interconnect);
  w.u64(snapshot.common.traffic_p2p);
  w.index_vec(snapshot.common.prev_subset);

  w.boolean(snapshot.has_nessa);
  if (snapshot.has_nessa) {
    const NessaCkpt& ns = snapshot.nessa;
    w.index_vec(ns.pool);
    put_float_table(w, ns.history);
    w.blob(ns.last_correct);
    w.f64(ns.fraction);
    w.f64(ns.prev_loss);
    w.index_vec(ns.coreset.indices);
    w.index_vec(ns.coreset.weights);
    w.f64(ns.coreset.objective);
    w.u64(ns.coreset.gain_evaluations);
    w.u64(ns.coreset.peak_kernel_bytes);
    w.u64(ns.coreset.similarity_ops);
    w.u64(ns.coreset.greedy_ops);
    put_sim_time(w, ns.nominal_fpga_phase);
  }
  return w.take();
}

TrainerSnapshot decode_trainer_snapshot(
    const std::vector<std::uint8_t>& payload) {
  ckpt::BufReader r(payload);
  TrainerSnapshot snapshot;
  snapshot.tag = r.str();
  snapshot.next_epoch = r.u64();
  snapshot.fingerprint = r.u64();

  snapshot.common.rng = get_rng_state(r);
  snapshot.common.model_blob = r.blob();
  snapshot.common.velocities = get_float_table(r);
  const std::uint64_t dropouts = r.u64();
  snapshot.common.dropout_rngs.reserve(static_cast<std::size_t>(dropouts));
  for (std::uint64_t i = 0; i < dropouts; ++i) {
    snapshot.common.dropout_rngs.push_back(get_rng_state(r));
  }
  snapshot.common.partial = get_result(r);
  snapshot.common.traffic_interconnect = r.u64();
  snapshot.common.traffic_p2p = r.u64();
  snapshot.common.prev_subset = r.index_vec();

  snapshot.has_nessa = r.boolean();
  if (snapshot.has_nessa) {
    NessaCkpt& ns = snapshot.nessa;
    ns.pool = r.index_vec();
    ns.history = get_float_table(r);
    ns.last_correct = r.blob();
    ns.fraction = r.f64();
    ns.prev_loss = r.f64();
    ns.coreset.indices = r.index_vec();
    ns.coreset.weights = r.index_vec();
    ns.coreset.objective = r.f64();
    ns.coreset.gain_evaluations = static_cast<std::size_t>(r.u64());
    ns.coreset.peak_kernel_bytes = r.u64();
    ns.coreset.similarity_ops = r.u64();
    ns.coreset.greedy_ops = r.u64();
    ns.nominal_fpga_phase = get_sim_time(r);
  }
  if (!r.done()) {
    throw ckpt::SnapshotError(
        ckpt::SnapshotFault::kBadPayload,
        "trainer snapshot has " + std::to_string(r.remaining()) +
            " trailing bytes");
  }
  return snapshot;
}

std::uint64_t run_fingerprint(std::string_view tag,
                              const PipelineInputs& inputs, double knob,
                              std::uint64_t extra) {
  std::uint64_t h = 0x6e657373612d636bULL;  // "nessa-ck"
  for (char c : tag) h = mix(h, static_cast<std::uint64_t>(c));
  h = mix(h, inputs.train.seed);
  h = mix(h, inputs.train.epochs);
  h = mix(h, inputs.train.batch_size);
  h = mix(h, inputs.dataset != nullptr ? inputs.dataset->train_size() : 0);
  h = mix(h, inputs.info.paper_train_size);
  for (std::size_t width : inputs.model.hidden) h = mix(h, width);
  h = mix(h, std::bit_cast<std::uint64_t>(knob));
  h = mix(h, extra);
  // The streaming interface pins the trajectory too: a different chunk
  // budget changes the scan accounting, and a different scenario stream
  // changes every epoch's visible data.
  h = mix(h, inputs.train.chunk_samples);
  h = mix(h, inputs.stream != nullptr ? inputs.stream->fingerprint() : 0);
  return h;
}

CommonCkpt capture_common(const util::Rng& rng, nn::Sequential& model,
                          const nn::Sgd& sgd, const RunResult& partial) {
  CommonCkpt common;
  common.rng = rng.state();
  std::ostringstream blob(std::ios::binary);
  nn::save_weights(model, blob);
  const std::string bytes = blob.str();
  common.model_blob.assign(bytes.begin(), bytes.end());
  common.velocities = sgd.export_velocities(model.params());
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (auto* dropout = dynamic_cast<nn::Dropout*>(&model.layer(i))) {
      common.dropout_rngs.push_back(dropout->rng().state());
    }
  }
  common.partial = partial;
  return common;
}

void restore_common(const CommonCkpt& common, util::Rng& rng,
                    nn::Sequential& model, nn::Sgd& sgd, RunResult& partial) {
  rng.set_state(common.rng);
  std::istringstream blob(
      std::string(common.model_blob.begin(), common.model_blob.end()),
      std::ios::binary);
  try {
    nn::load_weights(model, blob);
  } catch (const std::runtime_error& err) {
    throw ckpt::SnapshotError(
        ckpt::SnapshotFault::kBadPayload,
        std::string("snapshot model weights do not load: ") + err.what());
  }
  try {
    sgd.import_velocities(model.params(), common.velocities);
  } catch (const std::exception& err) {
    throw ckpt::SnapshotError(
        ckpt::SnapshotFault::kBadPayload,
        std::string("snapshot velocities do not import: ") + err.what());
  }
  std::size_t next_dropout = 0;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (auto* dropout = dynamic_cast<nn::Dropout*>(&model.layer(i))) {
      if (next_dropout >= common.dropout_rngs.size()) {
        throw ckpt::SnapshotError(
            ckpt::SnapshotFault::kBadPayload,
            "snapshot holds fewer dropout rng states than the model");
      }
      dropout->rng().set_state(common.dropout_rngs[next_dropout++]);
    }
  }
  if (next_dropout != common.dropout_rngs.size()) {
    throw ckpt::SnapshotError(
        ckpt::SnapshotFault::kBadPayload,
        "snapshot holds more dropout rng states than the model");
  }
  partial = common.partial;
}

CheckpointSession::CheckpointSession(const ckpt::CheckpointConfig& config,
                                     std::string tag,
                                     std::uint64_t fingerprint)
    : config_(config), tag_(std::move(tag)), fingerprint_(fingerprint) {
  if (config_.every_epochs == 0) config_.every_epochs = 1;
  if (config_.enabled()) writer_.emplace(config_);
}

std::optional<TrainerSnapshot> CheckpointSession::restore() {
  if (!config_.resume) return std::nullopt;
  const ckpt::Snapshot snap = ckpt::Reader(config_.dir).load_latest();
  TrainerSnapshot snapshot = decode_trainer_snapshot(snap.payload);
  if (snapshot.tag != tag_) {
    throw ckpt::SnapshotError(
        ckpt::SnapshotFault::kBadPayload,
        "snapshot belongs to driver '" + snapshot.tag +
            "', cannot resume driver '" + tag_ + "'");
  }
  if (snapshot.fingerprint != fingerprint_) {
    throw ckpt::SnapshotError(
        ckpt::SnapshotFault::kBadPayload,
        "snapshot fingerprint mismatch: the run configuration differs from "
        "the checkpointed run");
  }
  if (snapshot.next_epoch != snap.epoch) {
    throw ckpt::SnapshotError(
        ckpt::SnapshotFault::kBadPayload,
        "snapshot epoch header disagrees with its payload");
  }
  telemetry::count("ckpt.resumes");
  telemetry::gauge_set("ckpt.resume_epoch",
                       static_cast<double>(snapshot.next_epoch));
  return snapshot;
}

bool CheckpointSession::due(std::uint64_t completed) const noexcept {
  return config_.enabled() && completed > 0 &&
         completed % config_.every_epochs == 0;
}

void CheckpointSession::save(TrainerSnapshot snapshot) {
  snapshot.tag = tag_;
  snapshot.fingerprint = fingerprint_;
  writer_->write(snapshot.next_epoch, encode_trainer_snapshot(snapshot));
}

}  // namespace nessa::core::detail
