// The NeSSA pipeline (paper §3, Fig. 3):
//   1. stream the candidate pool from flash to the FPGA over P2P,
//   2. run the quantized target model forward near-storage to get gradient
//      embeddings + losses (real computation via quant::QuantizedMlp),
//   3. per-class, partition-chunked facility-location selection,
//   4. ship only the selected subset to the GPU and train on it,
//   5. quantize the updated weights and feed them back to the FPGA,
//   6. subset biasing drops learned samples from the candidate pool every
//      `drop_interval_epochs`; dynamic sizing shrinks the subset while the
//      loss falls quickly.
// FPGA selection for epoch t+1 overlaps GPU training of epoch t.
#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "nessa/ckpt/errors.hpp"
#include "nessa/core/near_storage.hpp"
#include "nessa/fault/crash.hpp"
#include "nessa/fault/epoch_schedule.hpp"
#include "nessa/core/pipeline.hpp"
#include "nessa/tensor/ops.hpp"
#include "nessa/core/train_utils.hpp"
#include "nessa/nn/metrics.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/quant/qmodel.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/telemetry/telemetry.hpp"
#include "nessa/util/stats.hpp"
#include "pipeline_common.hpp"
#include "trainer_ckpt.hpp"

namespace nessa::core::detail {

RunResult run_nessa(const PipelineInputs& inputs, const NessaConfig& config,
                    smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  const std::size_t n = ds.train_size();

  util::Rng rng(inputs.train.seed);
  auto model = detail::build_target_model(inputs, rng);
  auto kernel = make_selection_model(model);
  nn::Sgd sgd(inputs.train.sgd);
  auto schedule = inputs.train.scale_lr_schedule
                      ? nn::StepLrSchedule::paper_scaled(inputs.train.epochs)
                      : nn::StepLrSchedule::paper_default();

  // Candidate pool (substrate indices); shrinks under subset biasing.
  std::vector<std::size_t> pool = iota_indices(n);
  LossHistory history(n, config.loss_window_epochs);
  std::vector<bool> last_correct(n, false);

  double fraction = config.subset_fraction;
  double prev_loss = -1.0;

  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const double ratio = detail::scale_ratio(inputs);
  const std::uint64_t macs_per_sample = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(detail::paper_macs_per_sample(inputs)) *
             config.selection_proxy_factor * kernel->mac_cost_factor()));
  // Feedback bytes at paper scale: int8 payload for the quantized kernel,
  // 4 bytes/param for the float fallback.
  const double bytes_per_param =
      static_cast<double>(kernel->payload_bytes()) /
      static_cast<double>(std::max<std::size_t>(1, model.parameter_count()));
  const auto paper_feedback_bytes = static_cast<std::uint64_t>(
      static_cast<double>(detail::paper_qweight_bytes(inputs)) *
      std::max(1.0, bytes_per_param));

  const smartssd::TrafficStats traffic0 = system.traffic();
  auto perf = make_performance_model(inputs.perf_model);

  // Epoch-granularity fault replay (see fault/epoch_schedule.hpp). The
  // deadline decision needs a nominal (fault-free) FPGA-phase basis; the
  // last reselect epoch's demand provides it, so the first selection can
  // never be skipped as stale.
  std::optional<fault::EpochSchedule> fault_schedule;
  if (inputs.fault_plan.enabled() ||
      inputs.fault_plan.selection_deadline_factor > 0.0) {
    fault_schedule.emplace(inputs.fault_plan);
  }
  util::SimTime nominal_fpga_phase = 0;

  // Chunk integrity (see data/integrity.hpp): with `corrupt` directives in
  // the plan and a chunked scan, every fetch is CRC-verified and the
  // plan's deterministic bit flips drive the re-fetch/quarantine path.
  data::ChunkIntegrity chunk_integrity;
  const bool use_integrity =
      inputs.fault_plan.has_corruption() && inputs.train.chunk_samples > 0;
  if (use_integrity) {
    chunk_integrity.corruptor = data::corruptor_from_plan(inputs.fault_plan);
  }

  selection::DriverConfig driver;
  driver.greedy = config.greedy;
  driver.stochastic_epsilon = config.stochastic_epsilon;
  driver.per_class = true;
  driver.partition_quota = config.partition_quota;
  driver.parallelism = config.parallelism;

  const std::size_t interval = std::max<std::size_t>(
      1, config.selection_interval);
  selection::CoresetResult coreset;

  RunResult result;

  // ---- checkpoint/restore (see trainer_ckpt.hpp) ----------------------
  detail::CheckpointSession ckpt_session(
      inputs.checkpoint, "nessa",
      detail::run_fingerprint("nessa", inputs, config.subset_fraction));
  std::size_t start_epoch = 0;
  util::SimTime sim_elapsed = 0;
  std::uint64_t base_interconnect = 0;
  std::uint64_t base_p2p = 0;
  if (auto snap = ckpt_session.restore()) {
    if (!snap->has_nessa || snap->nessa.last_correct.size() != n ||
        snap->nessa.history.size() != n) {
      throw ckpt::SnapshotError(
          ckpt::SnapshotFault::kBadPayload,
          "snapshot does not match the nessa driver's dataset");
    }
    for (std::size_t idx : snap->nessa.pool) {
      if (idx >= n) {
        throw ckpt::SnapshotError(ckpt::SnapshotFault::kBadPayload,
                                  "snapshot pool index out of range");
      }
    }
    for (std::size_t idx : snap->nessa.coreset.indices) {
      if (idx >= n) {
        throw ckpt::SnapshotError(ckpt::SnapshotFault::kBadPayload,
                                  "snapshot coreset index out of range");
      }
    }
    detail::restore_common(snap->common, rng, model, sgd, result);
    pool = std::move(snap->nessa.pool);
    history.restore(std::move(snap->nessa.history));
    for (std::size_t i = 0; i < n; ++i) {
      last_correct[i] = snap->nessa.last_correct[i] != 0;
    }
    fraction = snap->nessa.fraction;
    prev_loss = snap->nessa.prev_loss;
    coreset = std::move(snap->nessa.coreset);
    nominal_fpga_phase = snap->nessa.nominal_fpga_phase;
    base_interconnect = snap->common.traffic_interconnect;
    base_p2p = snap->common.traffic_p2p;
    start_epoch = static_cast<std::size_t>(snap->next_epoch);
    // The kernel was built from the deterministic initial weights; bring it
    // to the checkpointed state exactly as the uninterrupted run did.
    if (config.weight_feedback && start_epoch > 0) kernel->refresh(model);
    for (const EpochReport& report : result.epochs) {
      sim_elapsed += report.cost.total();
    }
  }

  // Previous epoch's trained subset, for the selection-overlap telemetry.
  // After a restore the carried coreset IS the last epoch's subset, so the
  // resumed overlap matches the uninterrupted run.
  std::vector<std::size_t> prev_subset = coreset.indices;

  for (std::size_t epoch = start_epoch; epoch < inputs.train.epochs;
       ++epoch) {
    fault::maybe_crash(inputs.fault_plan, epoch, sim_elapsed);
    // The data visible this epoch: the static split, or the scenario
    // stream's view when one is attached (non-stationary workloads).
    const data::Dataset& eds = detail::epoch_data(inputs, epoch);
    sgd.set_learning_rate(schedule.lr_at(epoch));
    driver.seed = inputs.train.seed * 7919 + epoch;

    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(fraction *
                                               static_cast<double>(n))));
    bool reselect = epoch % interval == 0 || coreset.indices.empty();
    // Degraded mode: an FPGA stall that blows the selection deadline means
    // this epoch trains on the carried-forward subset instead of waiting.
    if (fault_schedule && reselect && !coreset.indices.empty() &&
        nominal_fpga_phase > 0 &&
        fault_schedule->selection_timeout(epoch, nominal_fpga_phase)) {
      reselect = false;
      ++result.fault_stale_epochs;
      telemetry::count("fault.stale_epochs");
    }
    std::uint64_t chunk_fetches = 0;
    if (reselect) {
      // ---- near-storage selection pass (FPGA) -----------------------
      // The scan pulls the pool through the chunked streaming interface;
      // chunk_samples == 0 is the monolithic single-chunk fast path
      // (bit-identical to the pre-streaming scan, zero fetches charged).
      auto span = telemetry::wall_span("nessa-selection-pass", "core");
      auto scored = detail::score_pool(
          *kernel, eds.train(), pool, config.scaled_embeddings,
          inputs.train.batch_size, inputs.train.chunk_samples,
          eds.stored_bytes_per_sample(),
          use_integrity ? &chunk_integrity : nullptr);
      const auto& emb = scored.emb;
      chunk_fetches = scored.chunk_fetches;
      result.chunk_corruptions += scored.integrity.corruptions;
      result.chunk_refetches += scored.integrity.refetches;
      result.quarantined_chunks += scored.integrity.quarantined;
      if (scored.excluded.empty()) {
        for (std::size_t i = 0; i < pool.size(); ++i) {
          history.record(pool[i], emb.losses[i]);
          last_correct[pool[i]] = emb.correct[i];
        }
        std::vector<std::int32_t> pool_labels(pool.size());
        for (std::size_t i = 0; i < pool.size(); ++i) {
          pool_labels[i] = eds.train().labels[pool[i]];
        }
        coreset = selection::select_coreset(emb.embeddings, pool_labels, pool,
                                            std::min(k, pool.size()), driver);
      } else {
        // Quarantined chunks drop their rows from this pass: history and
        // selection see only the surviving rows — bad bytes are never
        // scored. With every chunk quarantined the previous subset is
        // carried forward (telemetry-visible staleness).
        std::vector<std::size_t> kept;
        kept.reserve(pool.size());
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (scored.excluded[i] == 0) kept.push_back(i);
        }
        for (const std::size_t i : kept) {
          history.record(pool[i], emb.losses[i]);
          last_correct[pool[i]] = emb.correct[i];
        }
        if (!kept.empty()) {
          const std::size_t classes =
              emb.embeddings.rank() == 2 ? emb.embeddings.cols() : 0;
          tensor::Tensor kept_emb({kept.size(), classes});
          std::vector<std::int32_t> kept_labels(kept.size());
          std::vector<std::size_t> kept_pool(kept.size());
          for (std::size_t i = 0; i < kept.size(); ++i) {
            const std::size_t src = kept[i];
            kept_pool[i] = pool[src];
            kept_labels[i] = eds.train().labels[pool[src]];
            std::copy_n(emb.embeddings.data() + src * classes, classes,
                        kept_emb.data() + i * classes);
          }
          coreset = selection::select_coreset(
              kept_emb, kept_labels, kept_pool,
              std::min(k, kept_pool.size()), driver);
        } else if (!coreset.indices.empty()) {
          ++result.fault_stale_epochs;
          telemetry::count("fault.stale_epochs");
        }
      }
    }

    // ---- GPU subset training ----------------------------------------
    std::vector<double> weights(coreset.weights.begin(),
                                coreset.weights.end());
    EpochReport report;
    report.epoch = epoch;
    report.subset_size = coreset.indices.size();
    report.pool_size = pool.size();
    report.subset_fraction =
        static_cast<double>(coreset.indices.size()) / static_cast<double>(n);
    report.chunk_fetches = chunk_fetches;
    report.selection_overlap =
        (reselect && !prev_subset.empty())
            ? detail::selection_overlap(coreset.indices, prev_subset)
            : 1.0;  // first or carried subset: nothing turned over
    report.class_mix = detail::stream_class_mix(inputs, epoch);
    prev_subset = coreset.indices;
    report.train_loss =
        train_one_epoch(model, sgd, eds.train(), coreset.indices, weights,
                        inputs.train.batch_size, rng);
    report.test_accuracy =
        nn::evaluate(model, eds.test().features, eds.test().labels).accuracy;

    // ---- feedback: quantized weights back to the FPGA (§3.2.1) ------
    if (config.weight_feedback) {
      auto span = telemetry::wall_span("nessa-feedback", "core");
      kernel->refresh(model);
    }

    // ---- paper-scale costing -----------------------------------------
    const double pool_fraction =
        static_cast<double>(pool.size()) / static_cast<double>(n);
    const std::size_t paper_pool = detail::paper_count(inputs, pool_fraction);
    const std::size_t paper_subset =
        detail::paper_count(inputs, report.subset_fraction);

    // Selection compute: quantized forwards over the pool + similarity and
    // greedy ops. Substrate op counts are rescaled: chunked selection work
    // grows linearly with pool size, monolithic quadratically.
    const double op_ratio =
        config.partition_quota > 0 ? ratio : ratio * ratio;
    NessaEpochDemand demand;
    demand.reselect = reselect;
    demand.pool_records = paper_pool;
    demand.subset_records = paper_subset;
    demand.record_bytes = sample_bytes;
    demand.forward_macs =
        static_cast<std::uint64_t>(paper_pool) * macs_per_sample;
    demand.selection_ops = static_cast<std::uint64_t>(
        static_cast<double>(coreset.similarity_ops + coreset.greedy_ops) *
        op_ratio);
    demand.train_gflops_per_sample = inputs.model.paper_gflops_per_sample;
    demand.batch_size = inputs.train.batch_size;
    demand.weight_feedback = config.weight_feedback;
    demand.feedback_bytes = paper_feedback_bytes;
    // Chunk budget at paper scale: the substrate chunk size rescaled by the
    // dataset ratio. The event-driven model streams the scan as per-chunk
    // flash fetches instead of per-batch reads (flash-bus "chunk-fetch").
    demand.chunk_records =
        inputs.train.chunk_samples > 0
            ? std::max<std::size_t>(
                  1, static_cast<std::size_t>(std::llround(
                         static_cast<double>(inputs.train.chunk_samples) *
                         ratio)))
            : 0;
    if (fault_schedule && reselect) {
      if (fault_schedule->p2p_outage(epoch)) {
        demand.scan_via_host = true;
        ++result.fault_fallback_epochs;
        telemetry::count("fault.fallback.host_path");
      }
      demand.scan_slowdown = fault_schedule->scan_slowdown(epoch);
      demand.selection_stall = fault_schedule->selection_stall(epoch);
    }
    report.cost = perf->nessa_epoch(system, demand);
    if (reselect) {
      // Refresh the deadline basis with this epoch's fault-free FPGA
      // phase (const timing queries — no byte accounting).
      nominal_fpga_phase =
          system.flash().batch_read_time(paper_pool, sample_bytes) +
          system.fpga_forward_time(demand.forward_macs) +
          system.fpga_selection_time(demand.selection_ops);
    }

    // ---- §3.2.2 subset biasing: drop learned samples -----------------
    if (config.subset_biasing && epoch + 1 < inputs.train.epochs &&
        (epoch + 1) % config.drop_interval_epochs == 0) {
      auto span = telemetry::wall_span("nessa-subset-biasing", "core");
      std::vector<double> means(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        means[i] = history.windowed_mean(pool[i]);
      }
      const double threshold =
          util::percentile_of(means, config.drop_quantile * 100.0);
      const std::size_t min_pool = std::max<std::size_t>(
          k, static_cast<std::size_t>(config.min_pool_factor *
                                      static_cast<double>(k)));
      std::vector<std::size_t> kept;
      kept.reserve(pool.size());
      std::size_t dropped = 0;
      const std::size_t max_drop =
          pool.size() > min_pool ? pool.size() - min_pool : 0;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const bool learned = means[i] <= threshold && last_correct[pool[i]];
        if (learned && dropped < max_drop) {
          ++dropped;
        } else {
          kept.push_back(pool[i]);
        }
      }
      pool = std::move(kept);
    }

    // ---- dynamic subset sizing (contribution 4) ----------------------
    if (config.dynamic_sizing) {
      if (prev_loss > 0.0 && report.train_loss > 0.0) {
        const double drop = (prev_loss - report.train_loss) / prev_loss;
        if (drop > config.shrink_rate) {
          fraction = std::max(config.min_subset_fraction,
                              fraction * (1.0 - config.shrink_step));
        } else if (drop < 0.0) {
          fraction = std::min(config.subset_fraction,
                              fraction / (1.0 - config.shrink_step));
        }
      }
      prev_loss = report.train_loss;
    }

    sim_elapsed += report.cost.total();
    result.epochs.push_back(std::move(report));
    telemetry::count("core.epochs");

    if (ckpt_session.due(epoch + 1)) {
      detail::TrainerSnapshot snap;
      snap.next_epoch = epoch + 1;
      snap.common = detail::capture_common(rng, model, sgd, result);
      snap.common.traffic_interconnect =
          base_interconnect +
          (system.traffic().interconnect_bytes - traffic0.interconnect_bytes);
      snap.common.traffic_p2p =
          base_p2p + (system.traffic().p2p_bytes - traffic0.p2p_bytes);
      snap.has_nessa = true;
      snap.nessa.pool = pool;
      snap.nessa.history = history.windows();
      snap.nessa.last_correct.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        snap.nessa.last_correct[i] = last_correct[i] ? 1 : 0;
      }
      snap.nessa.fraction = fraction;
      snap.nessa.prev_loss = prev_loss;
      snap.nessa.coreset = coreset;
      snap.nessa.nominal_fpga_phase = nominal_fpga_phase;
      ckpt_session.save(std::move(snap));
    }
  }

  result.interconnect_bytes =
      base_interconnect +
      (system.traffic().interconnect_bytes - traffic0.interconnect_bytes);
  result.p2p_bytes =
      base_p2p + (system.traffic().p2p_bytes - traffic0.p2p_bytes);
  result.finalize();
  return result;
}

}  // namespace nessa::core::detail
