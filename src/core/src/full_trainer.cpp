#include "nessa/core/pipeline.hpp"
#include "nessa/core/train_utils.hpp"
#include "nessa/fault/crash.hpp"
#include "nessa/nn/metrics.hpp"
#include "nessa/nn/optimizer.hpp"
#include "pipeline_common.hpp"
#include "trainer_ckpt.hpp"

namespace nessa::core::detail {

RunResult run_full(const PipelineInputs& inputs,
                   smartssd::SmartSsdSystem& system) {
  detail::check_inputs(inputs);
  const data::Dataset& ds = *inputs.dataset;
  util::Rng rng(inputs.train.seed);
  auto model = detail::build_target_model(inputs, rng);
  nn::Sgd sgd(inputs.train.sgd);
  auto schedule = inputs.train.scale_lr_schedule
                      ? nn::StepLrSchedule::paper_scaled(inputs.train.epochs)
                      : nn::StepLrSchedule::paper_default();

  const auto indices = iota_indices(ds.train_size());
  auto perf = make_performance_model(inputs.perf_model);
  const std::uint64_t sample_bytes = inputs.info.stored_bytes_per_sample;
  const std::size_t paper_n = inputs.info.paper_train_size;

  RunResult result;
  detail::CommonCheckpointHook ckpt(inputs, "full", 0.0, rng, model, sgd,
                                    result);

  for (std::size_t epoch = ckpt.start_epoch(); epoch < inputs.train.epochs;
       ++epoch) {
    fault::maybe_crash(inputs.fault_plan, epoch, ckpt.sim_elapsed());
    sgd.set_learning_rate(schedule.lr_at(epoch));
    EpochReport report;
    report.epoch = epoch;
    report.subset_size = indices.size();
    report.pool_size = indices.size();
    report.subset_fraction = 1.0;
    report.class_mix = detail::stream_class_mix(inputs, epoch);

    const data::Dataset& eds = detail::epoch_data(inputs, epoch);
    report.train_loss =
        train_one_epoch(model, sgd, eds.train(), indices, {},
                        inputs.train.batch_size, rng);
    report.test_accuracy =
        nn::evaluate(model, eds.test().features, eds.test().labels).accuracy;

    // Paper-scale cost: the whole dataset streams SSD -> host -> GPU every
    // epoch (at these scales training data is re-read and re-decoded per
    // epoch; the GPU model's data_time covers the host input pipeline).
    ConventionalDemand demand;
    demand.train_records = paper_n;
    demand.record_bytes = sample_bytes;
    demand.train_gflops_per_sample = inputs.model.paper_gflops_per_sample;
    demand.batch_size = inputs.train.batch_size;
    report.cost = perf->conventional_epoch(system, demand);
    result.interconnect_bytes +=
        static_cast<std::uint64_t>(paper_n) * sample_bytes;

    result.epochs.push_back(std::move(report));
    ckpt.epoch_done(epoch);
  }
  result.finalize();
  return result;
}

}  // namespace nessa::core::detail
