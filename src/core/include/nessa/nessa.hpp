// Umbrella header: the whole public NeSSA surface in one include.
//
//   #include "nessa/nessa.hpp"
//
// pulls in the system model (smartssd), the selection engine (selection),
// the training pipelines (core), the event-driven substrate (sim), the
// telemetry layer, and the shared utilities. Fine-grained includes remain
// available (and preferable inside the library itself); this header is for
// tools, benches, and downstream experiments that want everything.
#pragma once

// util: clocks, rng, thread pool, parallelism knob
#include "nessa/util/log.hpp"
#include "nessa/util/parallel_reduce.hpp"
#include "nessa/util/parallelism.hpp"
#include "nessa/util/rng.hpp"
#include "nessa/util/stats.hpp"
#include "nessa/util/thread_pool.hpp"
#include "nessa/util/timer.hpp"
#include "nessa/util/units.hpp"

// telemetry: tracing + metrics
#include "nessa/telemetry/metrics.hpp"
#include "nessa/telemetry/telemetry.hpp"
#include "nessa/telemetry/trace.hpp"

// tensor + nn substrate
#include "nessa/nn/metrics.hpp"
#include "nessa/nn/model.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/tensor/ops.hpp"
#include "nessa/tensor/tensor.hpp"

// data + quantization (chunked streaming + non-stationary scenarios)
#include "nessa/data/chunked.hpp"
#include "nessa/data/dataset.hpp"
#include "nessa/data/loader.hpp"
#include "nessa/data/registry.hpp"
#include "nessa/data/scenario.hpp"
#include "nessa/quant/qmodel.hpp"
#include "nessa/quant/quantize.hpp"

// event-driven simulation substrate
#include "nessa/sim/component.hpp"
#include "nessa/sim/engine.hpp"
#include "nessa/sim/link.hpp"
#include "nessa/sim/memory.hpp"

// fault injection + reliability policies
#include "nessa/fault/epoch_schedule.hpp"
#include "nessa/fault/fault_plan.hpp"
#include "nessa/fault/injector.hpp"
#include "nessa/fault/report.hpp"
#include "nessa/fault/retry_policy.hpp"

// the SmartSSD system model
#include "nessa/smartssd/device.hpp"
#include "nessa/smartssd/device_graph.hpp"
#include "nessa/smartssd/flash.hpp"
#include "nessa/smartssd/fpga.hpp"
#include "nessa/smartssd/gpu_model.hpp"
#include "nessa/smartssd/host_cache.hpp"
#include "nessa/smartssd/pipeline_sim.hpp"

// selection engine
#include "nessa/selection/baselines.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/selection/facility_location.hpp"
#include "nessa/selection/greedi.hpp"
#include "nessa/selection/greedy.hpp"
#include "nessa/selection/kcenter.hpp"

// training pipelines + unified run configuration
#include "nessa/core/config.hpp"
#include "nessa/core/cost.hpp"
#include "nessa/core/energy.hpp"
#include "nessa/core/perf_model.hpp"
#include "nessa/core/pipeline.hpp"
#include "nessa/core/report.hpp"
#include "nessa/core/run.hpp"
#include "nessa/core/run_config.hpp"
#include "nessa/core/scenario_run.hpp"
