// The near-storage computations the SmartSSD FPGA kernel performs, exposed
// as library API so single- and multi-device trainers (and downstream
// users) share one implementation:
//  - the quantized forward pass producing gradient embeddings, losses and
//    per-sample correctness over a candidate pool, and
//  - the rolling per-sample loss history behind §3.2.2 subset biasing.
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "nessa/data/dataset.hpp"
#include "nessa/quant/qmodel.hpp"

namespace nessa::core {

struct QEmbeddings {
  tensor::Tensor embeddings;   ///< [pool, classes] gradient embeddings
  std::vector<float> losses;   ///< per pool row
  std::vector<bool> correct;   ///< per pool row
};

/// Quantized near-storage forward pass over the pooled candidates: what the
/// FPGA kernel computes each selection round. `pool` holds row indices into
/// `split`; `scaled` selects the ||penultimate||-scaled embedding variant.
QEmbeddings compute_q_embeddings(const quant::QuantizedMlp& qmodel,
                                 const data::Split& split,
                                 std::span<const std::size_t> pool,
                                 bool scaled, std::size_t batch_size);

/// The model copy living on the selection device, abstracted over kernel
/// arithmetic. The paper's kernel is the int8-quantized target model
/// (contribution 2); the float variant supports target architectures the
/// int8 MLP kernel cannot express (e.g. convolutional targets) at 4x the
/// feedback bytes and roughly 2x the modeled forward cost.
class SelectionModel {
 public:
  virtual ~SelectionModel() = default;

  /// Score a candidate pool: gradient embeddings + losses + correctness.
  virtual QEmbeddings score(const data::Split& split,
                            std::span<const std::size_t> pool, bool scaled,
                            std::size_t batch_size) = 0;

  /// §3.2.1 feedback: refresh from the freshly trained target model.
  virtual void refresh(const nn::Sequential& target) = 0;

  /// Bytes shipped per feedback refresh.
  [[nodiscard]] virtual std::size_t payload_bytes() const = 0;

  /// Relative cost of one scoring MAC vs the int8 kernel's (1.0 = int8).
  [[nodiscard]] virtual double mac_cost_factor() const = 0;
};

/// Int8 kernel (wraps quant::QuantizedMlp). Throws std::invalid_argument at
/// construction if the target contains layers the int8 MLP kernel cannot
/// express.
std::unique_ptr<SelectionModel> make_quantized_selection_model(
    const nn::Sequential& target);

/// Float kernel: a deep copy of the target refreshed by weight copy.
std::unique_ptr<SelectionModel> make_float_selection_model(
    const nn::Sequential& target);

/// Quantized if the architecture allows it, float otherwise.
std::unique_ptr<SelectionModel> make_selection_model(
    const nn::Sequential& target);

/// Rolling per-sample loss statistics for §3.2.2 subset biasing: the most
/// recent `window` recorded losses per sample, with an infinite mean for
/// samples never observed (so they are never treated as "learned").
class LossHistory {
 public:
  LossHistory(std::size_t samples, std::size_t window)
      : window_(window), histories_(samples) {}

  void record(std::size_t sample, float loss) {
    auto& h = histories_.at(sample);
    if (h.size() == window_) h.erase(h.begin());
    h.push_back(loss);
  }

  [[nodiscard]] double windowed_mean(std::size_t sample) const {
    const auto& h = histories_.at(sample);
    if (h.empty()) return std::numeric_limits<double>::infinity();
    double s = 0.0;
    for (float x : h) s += x;
    return s / static_cast<double>(h.size());
  }

  [[nodiscard]] std::size_t window() const noexcept { return window_; }

  /// Raw per-sample windows, for checkpoint/restore.
  [[nodiscard]] const std::vector<std::vector<float>>& windows()
      const noexcept {
    return histories_;
  }
  /// Restore from a snapshot; the sample count must match the history's.
  void restore(std::vector<std::vector<float>> windows) {
    if (windows.size() != histories_.size()) {
      throw std::invalid_argument(
          "LossHistory::restore: sample count mismatch");
    }
    histories_ = std::move(windows);
  }

 private:
  std::size_t window_;
  std::vector<std::vector<float>> histories_;
};

}  // namespace nessa::core
