// JobSpec — the value-type description of ONE training job.
//
// A JobSpec is everything that defines *what* to run and on *what modeled
// hardware*, independent of where it executes: the dataset (by registry
// name + substrate scale), the pipeline to run, device count, the modeled
// system, the batch-granular workload, substrate training knobs, the §3.2
// optimization toggles, the performance model, the fault plan and the
// checkpoint policy. A single interactive run (core::run) and a fleet job
// (fleet::FleetConfig's tenants) share this one validated spec — the fleet
// scheduler queues JobSpecs exactly as the CLI runs them.
//
// Host-side *execution* options (thread-pool parallelism, telemetry export
// paths) are NOT part of the spec: they belong to core::RunConfig, which
// is JobSpec + those options (see run_config.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nessa/ckpt/config.hpp"
#include "nessa/core/config.hpp"
#include "nessa/core/perf_model.hpp"
#include "nessa/fault/fault_plan.hpp"
#include "nessa/smartssd/device.hpp"
#include "nessa/smartssd/pipeline_sim.hpp"

namespace nessa::core {

/// Which training pipeline a job runs (the paper's comparison systems).
enum class PipelineKind : std::uint8_t {
  kNessa,       ///< §3 SmartSSD+GPU system (multi-device when devices > 1)
  kFull,        ///< conventional all-data training ("Goal" column)
  kFullCached,  ///< all-data behind a SHADE/iCache-style host cache
  kCraig,       ///< CRAIG host-CPU per-epoch coreset selection
  kKCenter,     ///< greedy k-center host-CPU core-set
  kRandom,      ///< uniform random subset (sanity baseline)
  kLossTopk,    ///< "biggest losers" top-k loss baseline
};

/// CLI-facing name ("nessa", "full", "full-cached", ...).
[[nodiscard]] const char* to_string(PipelineKind kind) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] PipelineKind pipeline_kind_from_string(std::string_view name);

struct JobSpec {
  /// Dataset registry name (see data::dataset_info) the substrate data is
  /// built from.
  std::string dataset = "CIFAR-10";
  /// Substrate scale: fraction of the paper train-set size actually
  /// trained on (paper-scale costing is unaffected).
  double dataset_scale = 0.03;
  /// Which pipeline this job runs.
  PipelineKind pipeline = PipelineKind::kNessa;
  /// SmartSSD count: > 1 shards the nessa pipeline across devices
  /// (run_nessa_multi); baselines require 1.
  std::size_t devices = 1;

  smartssd::SystemConfig system{};
  smartssd::EpochWorkload workload{};
  TrainConfig train{};
  NessaConfig nessa{};
  /// Epochs for the batch-granular pipeline simulation (>= 2; the first
  /// epoch has no overlap, so the steady-state estimate averages the rest).
  std::size_t pipeline_epochs = 8;
  /// How trainer epoch costs are priced: the closed-form analytic model or
  /// the discrete-event DeviceGraph probe (see core::PerformanceModel).
  PerfModelKind perf_model = PerfModelKind::kAnalytic;
  /// Routing/credit knobs for the discrete-event pipeline simulation.
  /// (fault_plan below is wired into pipeline_options.fault_plan by the
  /// entry points; do not set the raw pointer here.)
  smartssd::PipelineOptions pipeline_options{};
  /// Fault schedule for the run (see fault/fault_plan.hpp). Disabled by
  /// default; populate from FaultPlan::preset()/parse() or by hand.
  fault::FaultPlan fault_plan{};
  /// Checkpoint/restore (see ckpt/config.hpp): a non-empty dir snapshots
  /// trainer state at epoch boundaries; resume restores the newest valid
  /// snapshot and continues bit-identically. Disabled by default.
  ckpt::CheckpointConfig checkpoint{};

  /// Check every field and return ALL problems found, one human-readable
  /// message each ("field: why"). Empty means the spec is valid.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Throws std::invalid_argument listing every validation error (joined
  /// with "; ") if validate() is non-empty.
  void validate_or_throw() const;
};

}  // namespace nessa::core
