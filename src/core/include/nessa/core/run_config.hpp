// Unified run configuration — ONE struct that carries everything an
// end-to-end NeSSA run needs:
//
//   - the hardware being modeled      (smartssd::SystemConfig),
//   - the batch-granular workload     (smartssd::EpochWorkload),
//   - substrate training knobs       (core::TrainConfig),
//   - the §3.2 optimization toggles  (core::NessaConfig),
//   - execution knobs                (util::Parallelism, TelemetryConfig).
//
// Entry points that used to take these pieces separately now have RunConfig
// overloads (see below and pipeline.hpp); the old signatures remain as thin
// shims so existing call sites keep compiling, but new code should build a
// RunConfig — typically with the fluent with_*() chain — call validate()
// once, and hand the same object to every stage of the run.
//
//   auto rc = core::RunConfig{}
//                 .with_parallelism(true)
//                 .with_pipeline_epochs(12);
//   rc.nessa.subset_fraction = 0.25;
//   if (auto errors = rc.validate(); !errors.empty()) { ... }
//   auto trace = core::simulate_pipeline(rc);
//   auto run = core::run_nessa(inputs, rc, system);
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "nessa/ckpt/config.hpp"
#include "nessa/core/config.hpp"
#include "nessa/core/perf_model.hpp"
#include "nessa/fault/fault_plan.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/smartssd/device.hpp"
#include "nessa/smartssd/pipeline_sim.hpp"
#include "nessa/util/parallelism.hpp"

namespace nessa::core {

/// Where a run's telemetry goes. `enabled` gates recording entirely (the
/// disabled path is a single relaxed atomic load per instrumented phase);
/// the paths name the artifacts a tool should export afterwards — empty
/// means "record but don't write".
struct TelemetryConfig {
  bool enabled = false;
  std::string trace_path;    ///< Chrome trace-event JSON (chrome://tracing)
  std::string metrics_path;  ///< flat counters/gauges/histograms JSON
};

struct RunConfig {
  smartssd::SystemConfig system{};
  smartssd::EpochWorkload workload{};
  TrainConfig train{};
  NessaConfig nessa{};
  util::Parallelism parallelism{};
  TelemetryConfig telemetry{};
  /// Epochs for the batch-granular pipeline simulation (>= 2; the first
  /// epoch has no overlap, so the steady-state estimate averages the rest).
  std::size_t pipeline_epochs = 8;
  /// How trainer epoch costs are priced: the closed-form analytic model or
  /// the discrete-event DeviceGraph probe (see core::PerformanceModel).
  PerfModelKind perf_model = PerfModelKind::kAnalytic;
  /// Routing/credit knobs for the discrete-event pipeline simulation.
  /// (fault_plan below is wired into pipeline_options.fault_plan by the
  /// entry points; do not set the raw pointer here.)
  smartssd::PipelineOptions pipeline_options{};
  /// Fault schedule for the run (see fault/fault_plan.hpp). Disabled by
  /// default; populate from FaultPlan::preset()/parse() or by hand. Drives
  /// request-level injection in the pipeline simulation and epoch-level
  /// degraded-mode pricing in the trainers.
  fault::FaultPlan fault_plan{};
  /// Checkpoint/restore (see ckpt/config.hpp): a non-empty dir snapshots
  /// trainer state at epoch boundaries; resume restores the newest valid
  /// snapshot and continues bit-identically. Disabled by default.
  ckpt::CheckpointConfig checkpoint{};

  // --- fluent builder -------------------------------------------------
  RunConfig& with_system(smartssd::SystemConfig value) {
    system = std::move(value);
    return *this;
  }
  RunConfig& with_workload(smartssd::EpochWorkload value) {
    workload = value;
    return *this;
  }
  RunConfig& with_train(TrainConfig value) {
    train = value;
    return *this;
  }
  RunConfig& with_nessa(NessaConfig value) {
    nessa = value;
    return *this;
  }
  RunConfig& with_parallelism(util::Parallelism value) {
    parallelism = value;
    return *this;
  }
  RunConfig& with_telemetry(TelemetryConfig value) {
    telemetry = std::move(value);
    return *this;
  }
  RunConfig& with_pipeline_epochs(std::size_t value) {
    pipeline_epochs = value;
    return *this;
  }
  RunConfig& with_perf_model(PerfModelKind value) {
    perf_model = value;
    return *this;
  }
  RunConfig& with_pipeline_options(smartssd::PipelineOptions value) {
    pipeline_options = value;
    return *this;
  }
  RunConfig& with_fault_plan(fault::FaultPlan value) {
    fault_plan = std::move(value);
    return *this;
  }
  RunConfig& with_checkpoint(ckpt::CheckpointConfig value) {
    checkpoint = std::move(value);
    return *this;
  }
  /// Enable checkpointing into `dir` every `every_epochs` epochs.
  RunConfig& with_checkpoint(std::string dir, std::size_t every_epochs = 1) {
    checkpoint.dir = std::move(dir);
    checkpoint.every_epochs = every_epochs;
    return *this;
  }
  /// Resume from the newest valid snapshot in `dir` (and keep
  /// checkpointing there as the resumed run progresses).
  RunConfig& with_resume(std::string dir) {
    checkpoint.dir = std::move(dir);
    checkpoint.resume = true;
    return *this;
  }

  /// The selection-driver configuration this run implies (greedy kind,
  /// partitioning, parallelism). Seed is the nessa trainer's per-epoch
  /// derivation base.
  [[nodiscard]] selection::DriverConfig driver() const;

  /// Check every field and return ALL problems found, one human-readable
  /// message each ("field: why"). Empty means the config is valid. Unlike a
  /// throwing check, this lets a CLI report the complete list at once.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Throws std::invalid_argument listing every validation error (joined
  /// with "; ") if validate() is non-empty.
  void validate_or_throw() const;
};

/// Batch-granular pipeline simulation driven by a RunConfig (validates
/// first). Equivalent to smartssd::simulate_pipeline(config.system,
/// config.workload, config.pipeline_epochs).
smartssd::PipelineTrace simulate_pipeline(const RunConfig& config);

}  // namespace nessa::core
