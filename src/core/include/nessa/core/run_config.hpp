// Unified run configuration — JobSpec + host-side execution options.
//
// The *what to run* half (dataset, pipeline, devices, modeled hardware,
// workload, training and §3.2 knobs, fault plan, checkpoint policy) lives
// in the core::JobSpec base (see job_spec.hpp) — the same validated value
// a fleet job queues. RunConfig adds the *how to execute here* half:
//
//   - execution parallelism           (util::Parallelism),
//   - telemetry export                (TelemetryConfig).
//
// New code builds a RunConfig — typically with the fluent with_*() chain —
// calls validate() once, and hands the same object to core::run() /
// core::simulate() (see run.hpp):
//
//   auto rc = core::RunConfig{}
//                 .with_parallelism(true)
//                 .with_pipeline_epochs(12);
//   rc.nessa.subset_fraction = 0.25;
//   if (auto errors = rc.validate(); !errors.empty()) { ... }
//   auto trace = core::simulate(rc);
//   auto run = core::run(rc);
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "nessa/core/job_spec.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/util/parallelism.hpp"

namespace nessa::core {

/// Where a run's telemetry goes. `enabled` gates recording entirely (the
/// disabled path is a single relaxed atomic load per instrumented phase);
/// the paths name the artifacts a tool should export afterwards — empty
/// means "record but don't write".
struct TelemetryConfig {
  bool enabled = false;
  std::string trace_path;    ///< Chrome trace-event JSON (chrome://tracing)
  std::string metrics_path;  ///< flat counters/gauges/histograms JSON
};

struct RunConfig : JobSpec {
  util::Parallelism parallelism{};
  TelemetryConfig telemetry{};

  // --- fluent builder -------------------------------------------------
  RunConfig& with_dataset(std::string name, double scale = 0.03) {
    dataset = std::move(name);
    dataset_scale = scale;
    return *this;
  }
  RunConfig& with_pipeline(PipelineKind value) {
    pipeline = value;
    return *this;
  }
  RunConfig& with_devices(std::size_t value) {
    devices = value;
    return *this;
  }
  RunConfig& with_system(smartssd::SystemConfig value) {
    system = std::move(value);
    return *this;
  }
  RunConfig& with_workload(smartssd::EpochWorkload value) {
    workload = value;
    return *this;
  }
  RunConfig& with_train(TrainConfig value) {
    train = value;
    return *this;
  }
  RunConfig& with_nessa(NessaConfig value) {
    nessa = value;
    return *this;
  }
  RunConfig& with_parallelism(util::Parallelism value) {
    parallelism = value;
    return *this;
  }
  RunConfig& with_telemetry(TelemetryConfig value) {
    telemetry = std::move(value);
    return *this;
  }
  RunConfig& with_pipeline_epochs(std::size_t value) {
    pipeline_epochs = value;
    return *this;
  }
  RunConfig& with_perf_model(PerfModelKind value) {
    perf_model = value;
    return *this;
  }
  RunConfig& with_pipeline_options(smartssd::PipelineOptions value) {
    pipeline_options = value;
    return *this;
  }
  RunConfig& with_fault_plan(fault::FaultPlan value) {
    fault_plan = std::move(value);
    return *this;
  }
  RunConfig& with_checkpoint(ckpt::CheckpointConfig value) {
    checkpoint = std::move(value);
    return *this;
  }
  /// Enable checkpointing into `dir` every `every_epochs` epochs.
  RunConfig& with_checkpoint(std::string dir, std::size_t every_epochs = 1) {
    checkpoint.dir = std::move(dir);
    checkpoint.every_epochs = every_epochs;
    return *this;
  }
  /// Resume from the newest valid snapshot in `dir` (and keep
  /// checkpointing there as the resumed run progresses).
  RunConfig& with_resume(std::string dir) {
    checkpoint.dir = std::move(dir);
    checkpoint.resume = true;
    return *this;
  }

  /// The selection-driver configuration this run implies (greedy kind,
  /// partitioning, parallelism). Seed is the nessa trainer's per-epoch
  /// derivation base.
  [[nodiscard]] selection::DriverConfig driver() const;

  /// Check every field — the JobSpec half plus the host-side options —
  /// and return ALL problems found, one human-readable message each
  /// ("field: why"). Empty means the config is valid. Unlike a throwing
  /// check, this lets a CLI report the complete list at once.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Throws std::invalid_argument listing every validation error (joined
  /// with "; ") if validate() is non-empty.
  void validate_or_throw() const;
};

/// Batch-granular pipeline simulation driven by a RunConfig (validates
/// first); with a checkpoint dir configured it snapshots at every epoch
/// barrier and resumes bit-identically. See run.hpp for the paired
/// core::run() entry point.
smartssd::PipelineTrace simulate(const RunConfig& config);

}  // namespace nessa::core
