// Machine-readable run reports: serialize a RunResult (plus identifying
// metadata) to JSON for downstream plotting/analysis. Hand-rolled writer —
// the schema is flat and the library carries no JSON dependency.
#pragma once

#include <iosfwd>
#include <string>

#include "nessa/core/cost.hpp"

namespace nessa::core {

struct RunMetadata {
  std::string pipeline;  ///< e.g. "nessa", "full", "craig"
  std::string dataset;
  std::string network;
  std::string gpu;
  std::size_t devices = 1;
  std::uint64_t seed = 0;
};

/// Write `{meta..., summary..., epochs:[...]}` as pretty-printed JSON.
void write_json_report(const RunMetadata& meta, const RunResult& run,
                       std::ostream& os);

void write_json_report_file(const RunMetadata& meta, const RunResult& run,
                            const std::string& path);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& text);

}  // namespace nessa::core
