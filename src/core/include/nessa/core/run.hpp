// The unified run API: one validated RunConfig in, one RunResult out.
//
// core::run() replaces the PR-2-era per-pipeline entry points
// (run_nessa/run_full overloads, since removed; the surviving drivers live
// in detail:: inside pipeline.hpp with core::run as the one caller): the
// RunConfig's JobSpec half says WHAT to run — dataset, pipeline kind,
// device count, modeled hardware, fault plan, checkpoint policy — and the
// dispatcher routes to the right trainer. core::simulate() (run_config.hpp)
// is the paired batch-granular DES entry point.
//
//   auto rc = core::RunConfig{}.with_dataset("CIFAR-10", 0.03)
//                              .with_pipeline(core::PipelineKind::kNessa);
//   auto result = core::run(rc);                 // self-contained
//
// The three-argument overload serves callers that build their own
// substrate dataset or custom model factory (conv stand-ins, sweeps):
//
//   auto result = core::run(inputs, rc, system); // custom inputs
#pragma once

#include "nessa/core/pipeline.hpp"
#include "nessa/core/run_config.hpp"

namespace nessa::core {

/// Run `config`'s job on caller-built inputs and system. Validates first;
/// stages config.train / perf_model / fault_plan / checkpoint into the
/// inputs and dispatches on config.pipeline (and config.devices for the
/// multi-SmartSSD nessa pipeline). Baseline subset pipelines (craig,
/// kcenter, random, loss-topk) take their fraction from
/// config.nessa.subset_fraction.
RunResult run(const PipelineInputs& inputs, const RunConfig& config,
              smartssd::SmartSsdSystem& system);

/// Self-contained overload: builds the substrate dataset from the spec's
/// registry entry (config.dataset / dataset_scale, seeded by
/// config.train.seed), the paper-scale model spec, and the modeled
/// SmartSsdSystem from config.system, then runs as above.
RunResult run(const RunConfig& config);

}  // namespace nessa::core
