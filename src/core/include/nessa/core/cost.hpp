// Per-epoch and per-run cost accounting: simulated time per pipeline phase
// and bytes per traffic class. These aggregates are what the Figure 4 /
// §4.4 benches report.
#pragma once

#include <cstdint>
#include <vector>

#include "nessa/util/units.hpp"

namespace nessa::core {

using util::SimTime;

struct EpochCost {
  SimTime storage_scan = 0;   ///< flash -> selection engine (P2P or host)
  SimTime selection = 0;      ///< forward passes + similarity + greedy
  SimTime subset_transfer = 0;///< selected data -> GPU
  SimTime gpu_compute = 0;    ///< training compute on the GPU
  SimTime feedback = 0;       ///< quantized weights back to the FPGA
  /// NeSSA pipelines the FPGA selection of epoch t+1 with the GPU training
  /// of epoch t (both devices are independent), so its epoch critical path
  /// is max(fpga phase, gpu phase). CPU-side baselines are serial.
  bool selection_overlapped = false;
  /// Epoch total measured by the event-driven performance model (steady-
  /// state period on the component DeviceGraph). 0 = not measured; then
  /// total() falls back to the piecewise analytic combination. The per-
  /// phase fields above stay analytic either way — this overrides only how
  /// they combine (queueing and contention are not attributable to a
  /// single phase).
  SimTime modeled_total = 0;

  [[nodiscard]] SimTime fpga_phase() const noexcept {
    return storage_scan + selection;
  }
  [[nodiscard]] SimTime gpu_phase() const noexcept {
    return subset_transfer + gpu_compute + feedback;
  }
  [[nodiscard]] SimTime total() const noexcept {
    if (modeled_total > 0) return modeled_total;
    if (selection_overlapped) {
      return fpga_phase() > gpu_phase() ? fpga_phase() : gpu_phase();
    }
    return fpga_phase() + gpu_phase();
  }
};

struct EpochReport {
  std::size_t epoch = 0;
  double train_loss = 0.0;       ///< mean loss over trained batches
  double test_accuracy = 0.0;
  std::size_t subset_size = 0;   ///< substrate-scale samples trained on
  std::size_t pool_size = 0;     ///< candidate pool after biasing drops
  double subset_fraction = 0.0;  ///< subset / original train size
  /// |selected(e) ∩ selected(e-1)| / |selected(e)| for subset pipelines
  /// (1.0 at epoch 0 and on carried/stale epochs; 1.0 for full-data runs).
  /// Under a non-stationary stream this is the direct read on how fast the
  /// selector turns its subset over as the data moves.
  double selection_overlap = 1.0;
  /// Chunk windows pulled through data::ChunkedDataset for this epoch's
  /// scan (0 on the monolithic path).
  std::uint64_t chunk_fetches = 0;
  /// Per-class counts of the training pool visible this epoch. Populated
  /// only for scenario-stream runs (empty otherwise).
  std::vector<std::uint32_t> class_mix;
  EpochCost cost;
};

struct RunResult {
  std::vector<EpochReport> epochs;
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  /// Average trained fraction across epochs (Table 2's "Subset (%)").
  double mean_subset_fraction = 0.0;
  /// Simulated wall time aggregates at paper scale.
  SimTime total_time = 0;
  SimTime mean_epoch_time = 0;
  /// Bytes that crossed the drive-host interconnect over the whole run.
  std::uint64_t interconnect_bytes = 0;
  /// Bytes moved on-board over P2P (NeSSA only).
  std::uint64_t p2p_bytes = 0;
  /// Degraded-mode accounting under a fault plan (zero otherwise):
  /// epochs whose scan was re-priced over the host-mediated path, and
  /// epochs trained on a carried-forward (stale) subset after a missed
  /// selection deadline.
  std::uint64_t fault_fallback_epochs = 0;
  std::uint64_t fault_stale_epochs = 0;
  /// Chunk-integrity accounting under a corrupting fault plan (zero
  /// otherwise): CRC mismatches observed, re-fetches they triggered, and
  /// quarantine events. A sticky-corrupt chunk re-quarantines on every
  /// selection pass, so `quarantined_chunks` counts events, not distinct
  /// chunks.
  std::uint64_t chunk_corruptions = 0;
  std::uint64_t chunk_refetches = 0;
  std::uint64_t quarantined_chunks = 0;

  void finalize();
};

}  // namespace nessa::core
