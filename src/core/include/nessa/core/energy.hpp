// Energy accounting over a training run — the quantitative form of the
// paper's §2.2 power argument: selection on the SmartSSD's 7.5 W FPGA
// instead of a 45-250 W GPU or a ~150 W host CPU, and fewer GPU-hours
// overall because epochs shrink.
//
// Phase-to-device attribution:
//   storage_scan + selection -> the selection device (FPGA for NeSSA, host
//                               CPU+GPU mix for CRAIG/K-centers, none for
//                               full/random),
//   subset_transfer          -> charged to the host CPU (DMA management),
//   gpu_compute              -> the GPU at its TDP,
//   feedback                 -> host CPU.
#pragma once

#include "nessa/core/cost.hpp"
#include "nessa/smartssd/cpu_model.hpp"
#include "nessa/smartssd/fpga.hpp"
#include "nessa/smartssd/gpu_model.hpp"

namespace nessa::core {

/// Where a pipeline runs its selection phase.
enum class SelectionSite { kNone, kFpga, kHostCpu };

struct EnergyReport {
  double selection_joules = 0.0;  ///< FPGA or CPU, per attribution above
  double transfer_joules = 0.0;   ///< host CPU during transfers/feedback
  double gpu_joules = 0.0;        ///< training compute

  [[nodiscard]] double total() const noexcept {
    return selection_joules + transfer_joules + gpu_joules;
  }
};

/// Estimate the energy of a whole run from its per-epoch cost breakdown.
EnergyReport estimate_energy(const RunResult& run,
                             const smartssd::GpuSpec& gpu,
                             SelectionSite site,
                             const smartssd::FpgaConfig& fpga = {},
                             const smartssd::CpuSpec& cpu = {});

}  // namespace nessa::core
