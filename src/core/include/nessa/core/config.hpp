// Configuration for the training pipelines.
//
// Two scales coexist by design (DESIGN.md §1):
//  - *learning* happens for real on the substrate dataset (a few thousand
//    synthetic samples, an MLP, CPU SGD);
//  - *timing* is computed analytically at the paper's scale: the simulated
//    per-epoch costs use the real dataset's sample count, stored bytes per
//    sample, and the paper network's FLOPs, so Figures 2/4/6 and the
//    data-movement ratios are faithful to the hardware being modeled.
// The subset *fraction* is shared between both scales, which is what couples
// them.
#pragma once

#include <cstdint>
#include <string>

#include "nessa/nn/optimizer.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/util/parallelism.hpp"

namespace nessa::core {

struct TrainConfig {
  std::size_t epochs = 40;
  std::size_t batch_size = 128;          ///< paper §4.1
  nn::SgdConfig sgd{};                   ///< lr 0.1, Nesterov 0.9, wd 5e-4
  /// LR milestones follow the paper's 60/120/160-of-200 fractions, rescaled
  /// to `epochs`.
  bool scale_lr_schedule = true;
  std::uint64_t seed = 7;

  /// Streaming-chunk budget: rows per chunk window when the near-storage
  /// scan pulls the candidate pool through data::ChunkedDataset instead of
  /// touching the resident split. 0 = monolithic (single-chunk zero-copy
  /// path, bit-identical to the pre-streaming behavior). When > 0, the
  /// selection scan fetches only the chunks that still hold candidate-pool
  /// members, so subset biasing translates into fewer chunk fetches — the
  /// emergent scan saving the paper's §3.2.2 promises.
  std::size_t chunk_samples = 0;
};

/// Toggles for NeSSA's §3.2 optimizations — Table 3's ablation axes.
struct NessaConfig {
  double subset_fraction = 0.30;  ///< initial |S| / |V|

  /// §3.2.1 quantized-weight feedback: when false, the FPGA-side selection
  /// model keeps the initial weights all run (no feedback loop).
  bool weight_feedback = true;

  /// §3.2.2 subset biasing: drop learned samples from the candidate set.
  bool subset_biasing = true;
  std::size_t loss_window_epochs = 5;   ///< paper: most recent five epochs
  std::size_t drop_interval_epochs = 20;///< paper: every twenty epochs
  /// A candidate is "learned" when its windowed mean loss is below this
  /// quantile of the candidate pool and it is currently predicted correctly.
  double drop_quantile = 0.15;
  /// Never shrink the candidate pool below this multiple of the subset size.
  double min_pool_factor = 4.0;

  /// §3.2.3 dataset partitioning: chunked per-class selection with this
  /// per-chunk quota (the paper's mini-batch-sized m). 0 disables ("Vanilla").
  std::size_t partition_quota = 128;

  /// Contribution (4): dynamically reduce the subset size while the loss is
  /// dropping fast.
  bool dynamic_sizing = true;
  double shrink_rate = 0.03;      ///< relative loss drop that triggers shrink
  double shrink_step = 0.05;      ///< multiplicative subset-size step
  double min_subset_fraction = 0.10;

  selection::GreedyKind greedy = selection::GreedyKind::kLazy;
  double stochastic_epsilon = 0.1;
  /// Gradient-embedding flavour used by the FPGA kernel.
  bool scaled_embeddings = false;

  /// Re-select every `selection_interval` epochs, reusing the previous
  /// subset (and paying no scan/selection cost) in between. 1 = the
  /// paper's every-epoch loop; larger values amortize the near-storage
  /// pass at some accuracy cost (ablated in bench/ablation_optimizations).
  std::size_t selection_interval = 1;

  /// Cost factor of the FPGA-side scoring forward relative to the full
  /// target network. The paper requires the kernel to have *low
  /// operational intensity* (§2.2) — a full ResNet-50 forward per record
  /// is the opposite — so the modeled kernel scores records from a
  /// reduced-resolution representation (e.g. 4x-downsampled images,
  /// 1/16 the FLOPs), which preserves the loss/gradient ranking the
  /// selection needs. Set to 1.0 to charge a full-fidelity forward (the
  /// regime where multi-SmartSSD scaling becomes necessary).
  double selection_proxy_factor = 1.0 / 16.0;

  /// Run the selection engine on the global thread pool (see
  /// selection::DriverConfig::parallelism for the determinism contract).
  util::Parallelism parallelism = false;
};

}  // namespace nessa::core
