// Common inputs for the training pipelines and the pipeline entry points.
//
// Every pipeline couples two scales (see config.hpp): real substrate
// training for accuracy, analytic paper-scale costing for time and bytes.
// All four of the paper's comparison systems are here:
//   run_nessa    — the full SmartSSD+GPU system with §3.2 optimizations,
//   run_full     — conventional training on all data (the "Goal"/"All Data"
//                  column),
//   run_craig    — CRAIG [20]: CPU-side per-epoch coreset selection,
//   run_kcenter  — K-centers [17]: CPU-side farthest-first core-set,
//   run_random   — uniform random subset (sanity baseline).
#pragma once

#include <functional>

#include "nessa/core/config.hpp"
#include "nessa/core/cost.hpp"
#include "nessa/core/perf_model.hpp"
#include "nessa/core/run_config.hpp"
#include "nessa/data/dataset.hpp"
#include "nessa/data/registry.hpp"
#include "nessa/data/scenario.hpp"
#include "nessa/nn/model.hpp"
#include "nessa/smartssd/device.hpp"
#include "nessa/smartssd/host_cache.hpp"

namespace nessa::core {

struct PipelineInputs {
  const data::Dataset* dataset = nullptr;  ///< substrate data (required)
  data::DatasetInfo info;                  ///< paper-scale metadata
  nn::ModelSpec model;                     ///< target network spec
  TrainConfig train;
  /// Optional non-stationary workload: when set, every run driver trains
  /// and selects against `stream->at(epoch)` instead of the static
  /// `dataset` (which must be `&stream->base()` so sizes/metadata agree).
  /// The stream's fingerprint is mixed into checkpoint fingerprints, and
  /// per-epoch class histograms land in EpochReport::class_mix.
  const data::scenario::EpochStream* stream = nullptr;
  /// Optional custom target architecture (e.g. a conv mini-ResNet). When
  /// set, it replaces the spec's MLP; the paper-scale FLOP/parameter
  /// numbers still come from `model`. NeSSA's selection kernel falls back
  /// to the float variant automatically when the architecture cannot be
  /// expressed by the int8 MLP kernel.
  std::function<nn::Sequential(util::Rng&)> model_factory;
  /// Which performance model prices the paper-scale epoch costs: the
  /// closed-form analytic fast path (default) or the event-driven
  /// DeviceGraph probe (see perf_model.hpp).
  PerfModelKind perf_model = PerfModelKind::kAnalytic;
  /// Fault schedule for the run (disabled by default). The NeSSA trainer
  /// replays it at epoch granularity (fault::EpochSchedule): P2P outages
  /// re-price the scan over the host path, degraded NAND slows it, FPGA
  /// stalls that blow the selection deadline carry the previous subset
  /// forward as a stale epoch.
  fault::FaultPlan fault_plan{};
  /// Checkpoint/restore (disabled by default): every run driver snapshots
  /// its state into `checkpoint.dir` at epoch boundaries and, with
  /// `checkpoint.resume`, restores the newest valid snapshot and continues
  /// the run bit-identically (same RunResult as an uninterrupted run).
  ckpt::CheckpointConfig checkpoint{};
};

// The unified API is core::run(const RunConfig&) / core::run(inputs,
// config, system) in run.hpp: one validated spec drives the whole run and
// dispatches on config.pipeline. The PR-2 era piecewise run_full/run_nessa
// overloads (and their RunConfig-staging shims) are gone; the two drivers
// below live in detail:: with core::run as their one sanctioned caller.

namespace detail {

/// Conventional full-dataset training (paper "All Data" / Table 3 "Goal").
/// Internal driver — call core::run with PipelineKind::kFull.
RunResult run_full(const PipelineInputs& inputs,
                   smartssd::SmartSsdSystem& system);

/// NeSSA (§3): near-storage quantized selection + GPU subset training.
/// Internal driver — call core::run with PipelineKind::kNessa.
RunResult run_nessa(const PipelineInputs& inputs, const NessaConfig& config,
                    smartssd::SmartSsdSystem& system);

}  // namespace detail

/// CRAIG [20]: float-model gradient embeddings + per-class facility
/// location, selection on the host CPU each epoch, weighted subset SGD.
RunResult run_craig(const PipelineInputs& inputs, double subset_fraction,
                    smartssd::SmartSsdSystem& system);

/// K-centers [17]: greedy k-center over penultimate features, selection on
/// the host CPU each epoch, unweighted subset SGD.
RunResult run_kcenter(const PipelineInputs& inputs, double subset_fraction,
                      smartssd::SmartSsdSystem& system);

/// Uniform random subset each epoch.
RunResult run_random(const PipelineInputs& inputs, double subset_fraction,
                     smartssd::SmartSsdSystem& system);

/// Full-data training behind a SHADE/iCache-style host cache [22, 23]:
/// same gradient work as run_full, but cache hits skip the storage read +
/// decode path. The comparison the paper's intro makes: caching trims I/O
/// time, NeSSA removes both the I/O *and* most of the gradient work.
RunResult run_full_cached(const PipelineInputs& inputs,
                          const smartssd::HostCache& cache,
                          smartssd::SmartSsdSystem& system);

/// "Biggest losers" baseline [19]: trains on the top-k highest-loss
/// examples each epoch (host-side loss scan, no submodular structure).
RunResult run_loss_topk(const PipelineInputs& inputs, double subset_fraction,
                        smartssd::SmartSsdSystem& system);

/// Multi-SmartSSD scaling (the paper's §5 future work): the dataset is
/// sharded across `devices` identical SmartSSDs; each runs the quantized
/// scan and a local GreeDi round over its shard in parallel, a merge device
/// re-selects over the union, and the GPU trains on the final subset.
struct MultiDeviceConfig {
  std::size_t devices = 2;
};

/// `system` models ONE device (they are identical); per-device phases run
/// in parallel so the simulated scan/forward time divides by the device
/// count, while merge communication and feedback broadcast grow with it.
RunResult run_nessa_multi(const PipelineInputs& inputs,
                          const NessaConfig& config,
                          const MultiDeviceConfig& multi,
                          smartssd::SmartSsdSystem& system);

}  // namespace nessa::core
