// Non-stationary end-to-end drivers: one scenario stream (drift, imbalance,
// noise bursts, duplicates — see data/scenario.hpp) drives several pipelines
// over the SAME per-epoch data, so their accuracy trajectories, selection
// overlap, and chunk-fetch traffic are directly comparable. This is the
// entry point behind `nessa --scenario <preset>` and the CI scenario-smoke
// job.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nessa/core/run.hpp"
#include "nessa/data/scenario.hpp"

namespace nessa::core {

struct ScenarioRunConfig {
  data::scenario::ScenarioConfig scenario;
  /// Table-1 dataset whose paper-scale metadata (sizes, bytes/sample,
  /// network) prices the runs; the substrate data comes from the stream.
  std::string dataset = "CIFAR-10";
  std::vector<PipelineKind> pipelines = {
      PipelineKind::kNessa, PipelineKind::kRandom, PipelineKind::kFull};
  TrainConfig train;  ///< seed / epochs / batch size / chunk budget
  NessaConfig nessa;
  PerfModelKind perf_model = PerfModelKind::kAnalytic;
  smartssd::SystemConfig system;
};

struct ScenarioOutcome {
  PipelineKind pipeline = PipelineKind::kNessa;
  RunResult result;
};

struct ScenarioRunResult {
  data::scenario::ScenarioConfig scenario;
  std::size_t chunk_samples = 0;
  std::vector<ScenarioOutcome> outcomes;  ///< config.pipelines order
};

/// Run every configured pipeline over the scenario stream (each on a fresh
/// SmartSsdSystem so byte accounting never crosses runs). Throws
/// std::invalid_argument for invalid configs.
[[nodiscard]] ScenarioRunResult run_scenario(const ScenarioRunConfig& config);

/// Summary JSON for dashboards / the CI scenario-smoke invariants: scenario
/// identity, then one entry per pipeline with aggregate metrics and the
/// per-epoch accuracy / selection-overlap / chunk-fetch / class-mix rows.
void write_scenario_summary_json(const ScenarioRunResult& result,
                                 std::ostream& os);
void write_scenario_summary_json_file(const ScenarioRunResult& result,
                                      const std::string& path);

}  // namespace nessa::core
