// Shared GPU-side (substrate) training helpers used by every pipeline.
#pragma once

#include <span>

#include "nessa/data/dataset.hpp"
#include "nessa/data/sampler.hpp"
#include "nessa/nn/metrics.hpp"
#include "nessa/nn/model.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/util/rng.hpp"

namespace nessa::core {

/// One epoch of (optionally weighted) mini-batch SGD over the samples of
/// `split` indexed by `indices`. `weights`, when non-empty, gives a per-
/// sample gradient weight (CRAIG's medoid cluster sizes); weights are
/// normalized per batch so the expected update magnitude matches unweighted
/// SGD. Returns the mean training loss.
double train_one_epoch(nn::Sequential& model, nn::Sgd& optimizer,
                       const data::Split& split,
                       std::span<const std::size_t> indices,
                       std::span<const double> weights,
                       std::size_t batch_size, util::Rng& rng);

/// Identity permutation [0, n).
std::vector<std::size_t> iota_indices(std::size_t n);

}  // namespace nessa::core
