// The single performance-model interface in front of the simulation stack.
//
// Every trainer in src/core prices an epoch by describing WHAT moves and
// computes (a *demand* struct at paper scale) and asking a PerformanceModel
// HOW LONG it takes. Two implementations share the interface:
//
//  - AnalyticPerformanceModel: the closed-form steady-state arithmetic the
//    trainers historically inlined — serial sums within each phase,
//    max(fpga phase, gpu phase) across them when overlapped. Fast path;
//    byte accounting goes through the SmartSsdSystem primitives exactly as
//    before, so results are bit-identical to the pre-refactor trainers.
//
//  - EventPerformanceModel: prices the overlapped NeSSA epoch by running a
//    short steady-state probe on the discrete-event DeviceGraph
//    (smartssd::simulate_pipeline), where shared-link queueing and batch-
//    granular overlap are produced by the event engine. The measured steady
//    period lands in EpochCost::modeled_total, overriding the piecewise
//    max() while every per-phase field (and all byte accounting) stays
//    analytic. Serial epochs (host-side baselines, conventional training,
//    non-reselect epochs) delegate to the analytic model — their closed
//    form is exact because nothing overlaps.
//
// The two models are cross-checked by tests: on paper-default
// configurations they agree within 5%; contended-host-link scenarios are
// where the event model says something the analytic max() cannot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nessa/core/cost.hpp"
#include "nessa/smartssd/device.hpp"

namespace nessa::core {

enum class PerfModelKind {
  kAnalytic,
  kEventDriven,
};

[[nodiscard]] const char* to_string(PerfModelKind kind) noexcept;
/// Parses "analytic" / "event". Throws std::invalid_argument otherwise.
[[nodiscard]] PerfModelKind perf_model_from_string(const std::string& name);

/// One overlapped NeSSA epoch at paper scale (FPGA selection of epoch t+1
/// pipelined with GPU training of epoch t).
struct NessaEpochDemand {
  bool reselect = true;            ///< false: reuse last subset, no scan
  std::size_t pool_records = 0;    ///< candidates scanned when reselecting
  std::size_t subset_records = 0;  ///< selected and trained on
  std::uint64_t record_bytes = 0;
  std::uint64_t forward_macs = 0;  ///< int8 MACs over the whole pool
  std::uint64_t selection_ops = 0; ///< similarity + greedy (rescaled)
  double train_gflops_per_sample = 0.0;
  std::size_t batch_size = 128;
  bool weight_feedback = false;      ///< charge the feedback transfer?
  std::uint64_t feedback_bytes = 0;  ///< quantized-weight payload
  /// Paper-scale records per streaming-loader chunk; 0 = monolithic scan.
  /// The analytic model prices both the same (total bytes are equal); the
  /// event model feeds the scan from per-chunk flash fetches.
  std::size_t chunk_records = 0;

  // --- degraded-mode repricing (set by the trainers from a
  //     fault::EpochSchedule; defaults price the healthy system) ---------

  /// P2P path down this epoch: the scan is re-priced over the host-
  /// mediated path (flash -> host staging -> back down to the FPGA), the
  /// pool bytes legitimately crossing the interconnect twice.
  bool scan_via_host = false;
  /// Flash service-time multiplier (slow/degraded NAND); 1.0 = nominal.
  double scan_slowdown = 1.0;
  /// Injected FPGA dead time serialized into this epoch's selection.
  util::SimTime selection_stall = 0;
};

/// A serial host-side selection epoch (CRAIG / K-centers / loss-top-k):
/// full scan to the host, GPU inference pass, optional CPU selection work,
/// subset in, train.
struct HostSelectionDemand {
  std::size_t scan_records = 0;
  std::size_t subset_records = 0;
  std::uint64_t record_bytes = 0;
  double train_gflops_per_sample = 0.0;
  std::size_t batch_size = 128;
  double cpu_selection_ops = 0.0;  ///< 0 = no CPU-side selection term
};

/// A conventional training epoch through the host input pipeline (full-data
/// or random-subset training).
struct ConventionalDemand {
  std::size_t train_records = 0;
  std::uint64_t record_bytes = 0;
  double train_gflops_per_sample = 0.0;
  std::size_t batch_size = 128;
  /// When >= 0, replaces the GPU model's input-pipeline time (used by the
  /// host-cache pipeline, whose data path is the cache's to price).
  util::SimTime data_time_override = -1;
};

/// One multi-SmartSSD (GreeDi) epoch: `devices` shards scanned in parallel,
/// local rounds, union merge on one device, broadcast feedback.
struct MultiEpochDemand {
  std::size_t devices = 1;
  std::size_t shard_records = 0;  ///< per device
  std::size_t subset_records = 0;
  std::uint64_t record_bytes = 0;
  std::uint64_t shard_forward_macs = 0;   ///< per device
  std::uint64_t local_selection_ops = 0;  ///< slowest device, rescaled
  std::uint64_t merge_union_bytes = 0;    ///< winners' embeddings + ids
  std::uint64_t merge_ops = 0;            ///< union re-selection, rescaled
  double train_gflops_per_sample = 0.0;
  std::size_t batch_size = 128;
  std::uint64_t feedback_bytes_per_device = 0;  ///< 0 = no feedback
};

class PerformanceModel {
 public:
  virtual ~PerformanceModel() = default;

  [[nodiscard]] virtual PerfModelKind kind() const noexcept = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Price one epoch. Byte accounting flows through `system`'s data-
  /// movement primitives (identically for every implementation), so
  /// RunResult traffic deltas are model-independent.
  virtual EpochCost nessa_epoch(smartssd::SmartSsdSystem& system,
                                const NessaEpochDemand& demand) = 0;
  virtual EpochCost host_selection_epoch(smartssd::SmartSsdSystem& system,
                                         const HostSelectionDemand& demand) = 0;
  virtual EpochCost conventional_epoch(smartssd::SmartSsdSystem& system,
                                       const ConventionalDemand& demand) = 0;
  virtual EpochCost multi_epoch(smartssd::SmartSsdSystem& system,
                                const MultiEpochDemand& demand) = 0;
};

[[nodiscard]] std::unique_ptr<PerformanceModel> make_performance_model(
    PerfModelKind kind);

}  // namespace nessa::core
