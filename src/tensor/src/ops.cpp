#include "nessa/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "nessa/util/thread_pool.hpp"

namespace nessa::tensor {

namespace {

constexpr std::size_t kBlock = 64;
constexpr std::size_t kParallelThresholdFlops = 1u << 22;  // ~4 MFLOP

void require_rank2(const Tensor& t, const char* who) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(who) + ": tensor must be rank 2");
  }
}

/// Inner kernel: C[r0:r1) += A-rows * B, blocked over k and n.
/// A is (m x k), B is (k x n), C is (m x n), all row-major raw pointers.
void gemm_rows(const float* a, const float* b, float* c, std::size_t r0,
               std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t kk = 0; kk < k; kk += kBlock) {
    const std::size_t kend = std::min(k, kk + kBlock);
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t p = kk; p < kend; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void run_row_blocks(std::size_t m, std::size_t flops, bool parallel,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  auto& pool = util::ThreadPool::global();
  if (!parallel || flops < kParallelThresholdFlops || pool.size() <= 1 ||
      m < 2) {
    fn(0, m);
    return;
  }
  const std::size_t chunks = std::min(m, pool.size());
  const std::size_t per = (m + chunks - 1) / chunks;
  pool.parallel_for(0, chunks, [&](std::size_t c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(m, lo + per);
    if (lo < hi) fn(lo, hi);
  });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, bool parallel) {
  require_rank2(a, "matmul");
  require_rank2(b, "matmul");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  run_row_blocks(m, m * n * k, parallel, [&](std::size_t r0, std::size_t r1) {
    gemm_rows(a.data(), b.data(), c.data(), r0, r1, k, n);
  });
  return c;
}

Tensor matmul_at_b(const Tensor& a, const Tensor& b, bool parallel) {
  require_rank2(a, "matmul_at_b");
  require_rank2(b, "matmul_at_b");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != m) {
    throw std::invalid_argument("matmul_at_b: row-count mismatch");
  }
  // C (k x n) = sum over i of outer(A[i,:], B[i,:]). Parallelize over k rows
  // of the output by striding columns of A.
  Tensor c({k, n});
  run_row_blocks(k, m * n * k, parallel, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a.data() + i * k;
      const float* brow = b.data() + i * n;
      for (std::size_t p = r0; p < r1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        float* crow = c.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor matmul_a_bt(const Tensor& a, const Tensor& b, bool parallel) {
  require_rank2(a, "matmul_a_bt");
  require_rank2(b, "matmul_a_bt");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) {
    throw std::invalid_argument("matmul_a_bt: inner dim mismatch");
  }
  Tensor c({m, n});
  run_row_blocks(m, m * n * k, parallel, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a.data() + i * k;
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] = dot({arow, k}, {b.data() + j * k, k});
      }
    }
  });
  return c;
}

Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_naive");
  require_rank2(b, "matmul_naive");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) {
    throw std::invalid_argument("matmul_naive: inner dim mismatch");
  }
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a(i, p)) * b(p, j);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  require_rank2(a, "transpose");
  Tensor t({a.cols(), a.rows()});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

void add_row_vector(Tensor& a, const Tensor& bias) {
  require_rank2(a, "add_row_vector");
  if (bias.size() != a.cols()) {
    throw std::invalid_argument("add_row_vector: bias length mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] += bias[j];
  }
}

Tensor column_sums(const Tensor& a) {
  require_rank2(a, "column_sums");
  Tensor out({a.cols()});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += row[j];
  }
  return out;
}

void softmax_rows(Tensor& a) {
  require_rank2(a, "softmax_rows");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float* row = a.data() + i * a.cols();
    float mx = row[0];
    for (std::size_t j = 1; j < a.cols(); ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] *= inv;
  }
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  if (a.rank() != 2) {
    throw std::invalid_argument("argmax_rows: tensor must be rank 2");
  }
  std::vector<std::size_t> out(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.data() + i * a.cols();
    std::size_t best = 0;
    for (std::size_t j = 1; j < a.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out = a;
  for (float& x : out.flat()) x = std::max(0.0f, x);
  return out;
}

void relu_backward(Tensor& grad, const Tensor& pre_activation) {
  if (grad.shape() != pre_activation.shape()) {
    throw std::invalid_argument("relu_backward: shape mismatch");
  }
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (pre_activation[i] <= 0.0f) grad[i] = 0.0f;
  }
}

float squared_l2(std::span<const float> a, std::span<const float> b) noexcept {
  double acc = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc);
}

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  double acc = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

float l2_norm(std::span<const float> a) noexcept {
  double acc = 0.0;
  for (float x : a) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

Tensor pairwise_sq_dists(const Tensor& x, bool parallel) {
  require_rank2(x, "pairwise_sq_dists");
  const std::size_t m = x.rows();
  std::vector<float> sq(m);
  for (std::size_t i = 0; i < m; ++i) {
    sq[i] = dot(x.row(i), x.row(i));
  }
  Tensor cross = matmul_a_bt(x, x, parallel);
  Tensor d({m, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      d(i, j) = std::max(0.0f, sq[i] + sq[j] - 2.0f * cross(i, j));
    }
    d(i, i) = 0.0f;
  }
  return d;
}

}  // namespace nessa::tensor
