#include "nessa/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "nessa/util/thread_pool.hpp"

namespace nessa::tensor {

namespace {

constexpr std::size_t kBlock = 64;
constexpr std::size_t kParallelThresholdFlops = 1u << 22;  // ~4 MFLOP
/// B-row tile for the A*B^T kernels: 32 rows of up-to-kBlock floats stay
/// resident in L1 while one A row streams against them.
constexpr std::size_t kRowTile = 32;
/// Independent float accumulator lanes per dot product. Eight lanes break
/// the serial FP dependency chain so the compiler can keep one full SIMD
/// register of partial sums without reassociating a single accumulator.
constexpr std::size_t kLanes = 8;
/// Row width at which pairwise_sq_dists switches to its column-tiled kernel:
/// past ~4096 columns an output row (16 KB+) no longer shares L1 with the
/// streaming X^T row. Bit-identical either way (see the kernel comment);
/// measured tile-size tradeoffs live in docs/performance.md.
constexpr std::size_t kDistTileMinCols = 4096;
/// Column tile for that kernel: a 4096-float slice of the output row (16 KB)
/// takes all k saxpy passes while cache-resident.
constexpr std::size_t kDistColTile = 4096;

void require_rank2(const Tensor& t, const char* who) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(who) + ": tensor must be rank 2");
  }
}

/// Lane-unrolled dot product of two contiguous float rows. Fixed
/// accumulation order: lane partials combined pairwise, tail appended last.
float dot_lanes(const float* a, const float* b, std::size_t k) noexcept {
  float acc[kLanes] = {};
  std::size_t p = 0;
  for (; p + kLanes <= k; p += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) acc[l] += a[p + l] * b[p + l];
  }
  float tail = 0.0f;
  for (; p < k; ++p) tail += a[p] * b[p];
  return (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
          ((acc[4] + acc[5]) + (acc[6] + acc[7]))) +
         tail;
}

/// Inner kernel: C[r0:r1) += A-rows * B, blocked over k and n.
/// A is (m x k), B is (k x n), C is (m x n), all row-major raw pointers.
void gemm_rows(const float* a, const float* b, float* c, std::size_t r0,
               std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t kk = 0; kk < k; kk += kBlock) {
    const std::size_t kend = std::min(k, kk + kBlock);
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t p = kk; p < kend; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// A*B^T kernel for rows [r0, r1): tiles over B rows so a kRowTile slab of
/// B stays cache-hot while each A row streams against it; every output
/// element is a lane-unrolled dot product.
void gemm_abt_rows(const float* a, const float* b, float* c, std::size_t r0,
                   std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t j0 = 0; j0 < n; j0 += kRowTile) {
    const std::size_t j1 = std::min(n, j0 + kRowTile);
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t j = j0; j < j1; ++j) {
        crow[j] = dot_lanes(arow, b + j * k, k);
      }
    }
  }
}

void run_row_blocks(std::size_t m, std::size_t flops, bool parallel,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  auto& pool = util::ThreadPool::global();
  if (!parallel || flops < kParallelThresholdFlops || pool.size() <= 1 ||
      m < 2) {
    fn(0, m);
    return;
  }
  // Split into ~4 chunks per thread so a large matrix load-balances across
  // the pool instead of one oversized chunk per worker.
  const std::size_t target_chunks = pool.size() * 4;
  const std::size_t grain =
      std::max<std::size_t>(1, (m + target_chunks - 1) / target_chunks);
  pool.parallel_for_chunked(0, m, grain, fn);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, bool parallel) {
  require_rank2(a, "matmul");
  require_rank2(b, "matmul");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  run_row_blocks(m, m * n * k, parallel, [&](std::size_t r0, std::size_t r1) {
    gemm_rows(a.data(), b.data(), c.data(), r0, r1, k, n);
  });
  return c;
}

Tensor matmul_at_b(const Tensor& a, const Tensor& b, bool parallel) {
  require_rank2(a, "matmul_at_b");
  require_rank2(b, "matmul_at_b");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != m) {
    throw std::invalid_argument("matmul_at_b: row-count mismatch");
  }
  // C (k x n) = sum over i of outer(A[i,:], B[i,:]). Parallelize over k rows
  // of the output by striding columns of A.
  Tensor c({k, n});
  run_row_blocks(k, m * n * k, parallel, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a.data() + i * k;
      const float* brow = b.data() + i * n;
      for (std::size_t p = r0; p < r1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        float* crow = c.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor matmul_a_bt(const Tensor& a, const Tensor& b, bool parallel) {
  require_rank2(a, "matmul_a_bt");
  require_rank2(b, "matmul_a_bt");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) {
    throw std::invalid_argument("matmul_a_bt: inner dim mismatch");
  }
  Tensor c({m, n});
  run_row_blocks(m, m * n * k, parallel, [&](std::size_t r0, std::size_t r1) {
    gemm_abt_rows(a.data(), b.data(), c.data(), r0, r1, k, n);
  });
  return c;
}

Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_naive");
  require_rank2(b, "matmul_naive");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) {
    throw std::invalid_argument("matmul_naive: inner dim mismatch");
  }
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a(i, p)) * b(p, j);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  require_rank2(a, "transpose");
  Tensor t({a.cols(), a.rows()});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

void add_row_vector(Tensor& a, const Tensor& bias) {
  require_rank2(a, "add_row_vector");
  if (bias.size() != a.cols()) {
    throw std::invalid_argument("add_row_vector: bias length mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] += bias[j];
  }
}

Tensor column_sums(const Tensor& a) {
  require_rank2(a, "column_sums");
  Tensor out({a.cols()});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += row[j];
  }
  return out;
}

void softmax_rows(Tensor& a) {
  require_rank2(a, "softmax_rows");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float* row = a.data() + i * a.cols();
    float mx = row[0];
    for (std::size_t j = 1; j < a.cols(); ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] *= inv;
  }
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  if (a.rank() != 2) {
    throw std::invalid_argument("argmax_rows: tensor must be rank 2");
  }
  std::vector<std::size_t> out(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.data() + i * a.cols();
    std::size_t best = 0;
    for (std::size_t j = 1; j < a.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out = a;
  for (float& x : out.flat()) x = std::max(0.0f, x);
  return out;
}

void relu_backward(Tensor& grad, const Tensor& pre_activation) {
  if (grad.shape() != pre_activation.shape()) {
    throw std::invalid_argument("relu_backward: shape mismatch");
  }
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (pre_activation[i] <= 0.0f) grad[i] = 0.0f;
  }
}

float squared_l2(std::span<const float> a, std::span<const float> b) noexcept {
  double acc = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc);
}

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  double acc = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

float l2_norm(std::span<const float> a) noexcept {
  double acc = 0.0;
  for (float x : a) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

Tensor pairwise_sq_dists(const Tensor& x, bool parallel) {
  require_rank2(x, "pairwise_sq_dists");
  const std::size_t m = x.rows(), k = x.cols();
  std::vector<float> sq(m);
  for (std::size_t i = 0; i < m; ++i) {
    sq[i] = dot_lanes(x.data() + i * k, x.data() + i * k, k);
  }
  // Each output row is built with contiguous saxpy passes over X^T:
  //   d[i][j] = sq[i] + sq[j];  d[i][j] += (-2 x[i][t]) * x[j][t] for each t
  // Gradient embeddings are short (k ~ 10s), so a per-pair dot product is
  // pure call overhead; the saxpy form streams whole rows through SIMD
  // units instead. Every row is produced independently with a fixed
  // accumulation order, so the result does not depend on the row chunking,
  // and d(i,j) == d(j,i) exactly: -2*a is exact in floating point, so the
  // term sequences are bit-identical either way.
  std::vector<float> xt(k * m);  // X^T, so the inner saxpy loop is unit-stride
  for (std::size_t j = 0; j < m; ++j) {
    const float* row = x.data() + j * k;
    for (std::size_t t = 0; t < k; ++t) xt[t * m + j] = row[t];
  }
  Tensor d({m, m});
  run_row_blocks(m, m * m * (k + 2), parallel,
                 [&](std::size_t r0, std::size_t r1) {
                   const float* sqv = sq.data();
                   // Large rows run column-tiled: each drow slice receives
                   // all its k saxpy terms while L1-resident instead of the
                   // whole row streaming through cache once per embedding
                   // dimension. Per element the t-accumulation order is the
                   // loop-interchange of the untiled kernel with identical
                   // term order, so the result is bit-identical.
                   const std::size_t jtile =
                       m >= kDistTileMinCols ? kDistColTile : m;
                   for (std::size_t i = r0; i < r1; ++i) {
                     const float* arow = x.data() + i * k;
                     float* drow = d.data() + i * m;
                     const float sqi = sqv[i];
                     for (std::size_t j0 = 0; j0 < m; j0 += jtile) {
                       const std::size_t j1 = std::min(m, j0 + jtile);
                       for (std::size_t j = j0; j < j1; ++j) {
                         drow[j] = sqi + sqv[j];
                       }
                       for (std::size_t t = 0; t < k; ++t) {
                         const float av = -2.0f * arow[t];
                         const float* xtrow = xt.data() + t * m;
                         for (std::size_t j = j0; j < j1; ++j) {
                           drow[j] += av * xtrow[j];
                         }
                       }
                       for (std::size_t j = j0; j < j1; ++j) {
                         drow[j] = std::max(0.0f, drow[j]);
                       }
                     }
                     drow[i] = 0.0f;
                   }
                 });
  return d;
}

}  // namespace nessa::tensor
