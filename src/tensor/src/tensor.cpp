#include "nessa/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace nessa::tensor {

std::size_t shape_size(const Shape& shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  if (shape_.size() > 4) {
    throw std::invalid_argument("Tensor: rank > 4 not supported");
  }
  data_.assign(shape_size(shape_), 0.0f);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from(Shape shape, std::vector<float> values) {
  Tensor t;
  if (shape_size(shape) != values.size()) {
    throw std::invalid_argument("Tensor::from: shape/data size mismatch");
  }
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::he_uniform(Shape shape, std::size_t fan_in, util::Rng& rng) {
  Tensor t(std::move(shape));
  const float bound =
      std::sqrt(6.0f / static_cast<float>(std::max<std::size_t>(1, fan_in)));
  for (float& x : t.data_) {
    x = static_cast<float>(rng.uniform(-bound, bound));
  }
  return t;
}

Tensor Tensor::randn(Shape shape, float stddev, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) {
    x = static_cast<float>(rng.gaussian(0.0, stddev));
  }
  return t;
}

std::size_t Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) {
    throw std::out_of_range("Tensor::dim: index out of range");
  }
  return shape_[i];
}

std::size_t Tensor::rows() const {
  if (rank() != 2) throw std::logic_error("Tensor::rows: rank != 2");
  return shape_[0];
}

std::size_t Tensor::cols() const {
  if (rank() != 2) throw std::logic_error("Tensor::cols: rank != 2");
  return shape_[1];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  if (rank() != 2 || r >= shape_[0] || c >= shape_[1]) {
    throw std::out_of_range("Tensor::at: bad index");
  }
  return (*this)(r, c);
}

std::span<float> Tensor::row(std::size_t r) {
  if (rank() != 2 || r >= shape_[0]) {
    throw std::out_of_range("Tensor::row: bad row");
  }
  return {data_.data() + r * shape_[1], shape_[1]};
}

std::span<const float> Tensor::row(std::size_t r) const {
  if (rank() != 2 || r >= shape_[0]) {
    throw std::out_of_range("Tensor::row: bad row");
  }
  return {data_.data() + r * shape_[1], shape_[1]};
}

void Tensor::reshape(Shape shape) {
  if (shape_size(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: size mismatch");
  }
  shape_ = std::move(shape);
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string("Tensor::") + op +
                                ": shape mismatch " + shape_string() + " vs " +
                                other.shape_string());
  }
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) noexcept {
  for (float& x : data_) x *= scalar;
  return *this;
}

Tensor& Tensor::axpy(float alpha, const Tensor& other) {
  check_same_shape(other, "axpy");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
  return *this;
}

Tensor& Tensor::hadamard(const Tensor& other) {
  check_same_shape(other, "hadamard");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

float Tensor::sum() const noexcept {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::squared_norm() const noexcept {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(s);
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace nessa::tensor
