// BLAS-like kernels over rank-2 Tensors. All GEMM variants the MLP forward
// and backward passes need, plus row-wise softmax and distance kernels used
// by the selection library.
//
// The matmul is cache-blocked and optionally parallelized over row blocks via
// the global thread pool. Correctness is checked against a naive reference
// in the tests; both paths are exposed so the benchmarks can compare them.
#pragma once

#include <cstddef>
#include <span>

#include "nessa/tensor/tensor.hpp"

namespace nessa::tensor {

/// out = A(mxk) * B(kxn). Allocates the output.
Tensor matmul(const Tensor& a, const Tensor& b, bool parallel = true);

/// out = A^T(mxk->kxm as stored mxk) * B(mxn) -> (k x n).
/// I.e. computes A.transpose() * B without materializing the transpose.
Tensor matmul_at_b(const Tensor& a, const Tensor& b, bool parallel = true);

/// out = A(mxk) * B^T where B is (n x k) -> (m x n).
Tensor matmul_a_bt(const Tensor& a, const Tensor& b, bool parallel = true);

/// Naive triple-loop reference GEMM (for tests/benchmarks).
Tensor matmul_naive(const Tensor& a, const Tensor& b);

/// Explicit transpose copy of a rank-2 tensor.
Tensor transpose(const Tensor& a);

/// Add row vector `bias` (shape [n]) to every row of `a` (shape [m, n]).
void add_row_vector(Tensor& a, const Tensor& bias);

/// Column-wise sum of a rank-2 tensor -> shape [n]. Used for bias gradients.
Tensor column_sums(const Tensor& a);

/// In-place row-wise softmax of a rank-2 tensor (numerically stabilized).
void softmax_rows(Tensor& a);

/// Row-wise argmax of a rank-2 tensor.
std::vector<std::size_t> argmax_rows(const Tensor& a);

/// ReLU forward: out = max(0, a) elementwise (copy).
Tensor relu(const Tensor& a);

/// ReLU backward in place: grad[i] = 0 where pre_activation[i] <= 0.
void relu_backward(Tensor& grad, const Tensor& pre_activation);

/// Squared L2 distance between two equal-length vectors.
float squared_l2(std::span<const float> a, std::span<const float> b) noexcept;

/// Dot product of two equal-length vectors.
float dot(std::span<const float> a, std::span<const float> b) noexcept;

/// L2 norm of a vector.
float l2_norm(std::span<const float> a) noexcept;

/// Pairwise squared-L2 distance matrix between rows of X (m x d) -> (m x m).
/// Uses the ||x||^2 + ||y||^2 - 2<x,y> expansion with the X*X^T cross term
/// fused into the distance finalize (one pass per output row); clamps tiny
/// negatives from cancellation to zero. The result is exactly symmetric and
/// independent of `parallel` and the thread count.
Tensor pairwise_sq_dists(const Tensor& x, bool parallel = true);

}  // namespace nessa::tensor
