// Dense row-major float32 tensor. This is the numeric workhorse under the
// neural-network substrate (src/nn) and the quantization library (src/quant).
//
// Design choices:
//  - Always contiguous, row-major; views are not supported (copies are cheap
//    at NeSSA's scales and the ownership story stays trivial — R.11/R.20 of
//    the Core Guidelines: no naked new, unique ownership via std::vector).
//  - Shapes up to rank 4; the MLP path uses rank 2 almost everywhere.
//  - Elementwise helpers live here; BLAS-like kernels live in ops.hpp.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "nessa/util/rng.hpp"

namespace nessa::tensor {

using Shape = std::vector<std::size_t>;

class Tensor {
 public:
  Tensor() = default;

  /// Construct zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Rank-1/2 conveniences.
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor from(Shape shape, std::vector<float> values);

  /// He/Kaiming-uniform initialization for a [fan_in, fan_out]-ish shape.
  static Tensor he_uniform(Shape shape, std::size_t fan_in, util::Rng& rng);
  /// Gaussian init with given stddev.
  static Tensor randn(Shape shape, float stddev, util::Rng& rng);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Dimension i of the shape; throws on out-of-range.
  [[nodiscard]] std::size_t dim(std::size_t i) const;

  /// Rows/cols for rank-2 tensors (throws if rank != 2).
  [[nodiscard]] std::size_t rows() const;
  [[nodiscard]] std::size_t cols() const;

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

  /// Flat indexing.
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Rank-2 element access (unchecked in release; checked via at()).
  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * shape_[1] + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * shape_[1] + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;

  /// Pointer to the start of row r (rank-2).
  [[nodiscard]] std::span<float> row(std::size_t r);
  [[nodiscard]] std::span<const float> row(std::size_t r) const;

  /// Reshape in place; total size must match.
  void reshape(Shape shape);

  /// Fill with a constant.
  void fill(float value) noexcept;

  // --- elementwise in-place arithmetic ---------------------------------
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar) noexcept;
  /// this += alpha * other  (axpy)
  Tensor& axpy(float alpha, const Tensor& other);
  /// Hadamard product in place.
  Tensor& hadamard(const Tensor& other);

  [[nodiscard]] float sum() const noexcept;
  [[nodiscard]] float squared_norm() const noexcept;
  [[nodiscard]] float max_abs() const noexcept;

  [[nodiscard]] std::string shape_string() const;

  friend bool operator==(const Tensor& a, const Tensor& b) noexcept {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Total element count of a shape.
std::size_t shape_size(const Shape& shape) noexcept;

}  // namespace nessa::tensor
