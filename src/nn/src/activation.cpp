#include "nessa/nn/activation.hpp"

#include <cmath>

#include "nessa/tensor/ops.hpp"

namespace nessa::nn {

Tensor Relu::forward(const Tensor& input, bool /*train*/) {
  cached_input_ = input;
  return tensor::relu(input);
}

Tensor Relu::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  tensor::relu_backward(grad, cached_input_);
  return grad;
}

std::unique_ptr<Layer> Relu::clone() const { return std::make_unique<Relu>(); }

Tensor Tanh::forward(const Tensor& input, bool /*train*/) {
  Tensor out = input;
  for (float& x : out.flat()) x = std::tanh(x);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= 1.0f - y * y;
  }
  return grad;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

}  // namespace nessa::nn
