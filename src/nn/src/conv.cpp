#include "nessa/nn/conv.hpp"

#include <cmath>
#include <stdexcept>

#include "nessa/nn/dense.hpp"
#include "nessa/nn/activation.hpp"
#include "nessa/tensor/ops.hpp"

namespace nessa::nn {

namespace {

std::size_t conv_out_extent(std::size_t in, std::size_t kernel,
                            std::size_t stride, std::size_t pad) {
  if (in + 2 * pad < kernel) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
  return (in + 2 * pad - kernel) / stride + 1;
}

void check_input(const Tensor& input, const ImageDims& dims,
                 const char* who) {
  if (input.rank() != 2 || input.cols() != dims.flat()) {
    throw std::invalid_argument(std::string(who) +
                                ": input does not match image dims");
  }
}

}  // namespace

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(ImageDims in, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, util::Rng& rng)
    : in_(in), kernel_(kernel), stride_(stride), pad_(pad) {
  if (in.flat() == 0 || out_channels == 0 || kernel == 0 || stride == 0) {
    throw std::invalid_argument("Conv2d: bad geometry");
  }
  out_ = {out_channels, conv_out_extent(in.height, kernel, stride, pad),
          conv_out_extent(in.width, kernel, stride, pad)};
  const std::size_t fan_in = in.channels * kernel * kernel;
  weight_ = Tensor::he_uniform({fan_in, out_channels}, fan_in, rng);
  bias_ = Tensor({out_channels});
  grad_weight_ = Tensor({fan_in, out_channels});
  grad_bias_ = Tensor({out_channels});
}

Tensor Conv2d::im2col(const Tensor& input) const {
  const std::size_t batch = input.rows();
  const std::size_t patch = in_.channels * kernel_ * kernel_;
  Tensor cols({batch * out_.height * out_.width, patch});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* sample = input.data() + b * in_.flat();
    for (std::size_t oh = 0; oh < out_.height; ++oh) {
      for (std::size_t ow = 0; ow < out_.width; ++ow) {
        float* row = cols.data() +
                     ((b * out_.height + oh) * out_.width + ow) * patch;
        std::size_t idx = 0;
        for (std::size_t c = 0; c < in_.channels; ++c) {
          for (std::size_t kh = 0; kh < kernel_; ++kh) {
            const std::ptrdiff_t ih =
                static_cast<std::ptrdiff_t>(oh * stride_ + kh) -
                static_cast<std::ptrdiff_t>(pad_);
            for (std::size_t kw = 0; kw < kernel_; ++kw, ++idx) {
              const std::ptrdiff_t iw =
                  static_cast<std::ptrdiff_t>(ow * stride_ + kw) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ih >= 0 && iw >= 0 &&
                  ih < static_cast<std::ptrdiff_t>(in_.height) &&
                  iw < static_cast<std::ptrdiff_t>(in_.width)) {
                row[idx] = sample[(c * in_.height +
                                   static_cast<std::size_t>(ih)) *
                                      in_.width +
                                  static_cast<std::size_t>(iw)];
              } else {
                row[idx] = 0.0f;
              }
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  check_input(input, in_, "Conv2d");
  cached_batch_ = input.rows();
  cached_cols_ = im2col(input);
  Tensor out_mat = tensor::matmul(cached_cols_, weight_);
  tensor::add_row_vector(out_mat, bias_);

  // Reorder [B*OH*OW, OC] -> [B, OC*OH*OW] (CHW per sample).
  const std::size_t hw = out_.height * out_.width;
  Tensor out({cached_batch_, out_.flat()});
  for (std::size_t b = 0; b < cached_batch_; ++b) {
    for (std::size_t p = 0; p < hw; ++p) {
      const float* src = out_mat.data() + (b * hw + p) * out_.channels;
      for (std::size_t oc = 0; oc < out_.channels; ++oc) {
        out(b, oc * hw + p) = src[oc];
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.cols() != out_.flat() ||
      grad_output.rows() != cached_batch_) {
    throw std::invalid_argument("Conv2d::backward: bad gradient shape");
  }
  const std::size_t hw = out_.height * out_.width;
  // Reorder to matmul layout [B*OH*OW, OC].
  Tensor gmat({cached_batch_ * hw, out_.channels});
  for (std::size_t b = 0; b < cached_batch_; ++b) {
    for (std::size_t p = 0; p < hw; ++p) {
      float* dst = gmat.data() + (b * hw + p) * out_.channels;
      for (std::size_t oc = 0; oc < out_.channels; ++oc) {
        dst[oc] = grad_output(b, oc * hw + p);
      }
    }
  }

  grad_weight_ += tensor::matmul_at_b(cached_cols_, gmat);
  grad_bias_ += tensor::column_sums(gmat);

  Tensor gcols = tensor::matmul_a_bt(gmat, weight_);

  // col2im: scatter-add patch gradients back to input positions.
  Tensor dx({cached_batch_, in_.flat()});
  const std::size_t patch = in_.channels * kernel_ * kernel_;
  for (std::size_t b = 0; b < cached_batch_; ++b) {
    float* sample = dx.data() + b * in_.flat();
    for (std::size_t oh = 0; oh < out_.height; ++oh) {
      for (std::size_t ow = 0; ow < out_.width; ++ow) {
        const float* row = gcols.data() +
                           ((b * out_.height + oh) * out_.width + ow) * patch;
        std::size_t idx = 0;
        for (std::size_t c = 0; c < in_.channels; ++c) {
          for (std::size_t kh = 0; kh < kernel_; ++kh) {
            const std::ptrdiff_t ih =
                static_cast<std::ptrdiff_t>(oh * stride_ + kh) -
                static_cast<std::ptrdiff_t>(pad_);
            for (std::size_t kw = 0; kw < kernel_; ++kw, ++idx) {
              const std::ptrdiff_t iw =
                  static_cast<std::ptrdiff_t>(ow * stride_ + kw) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ih >= 0 && iw >= 0 &&
                  ih < static_cast<std::ptrdiff_t>(in_.height) &&
                  iw < static_cast<std::ptrdiff_t>(in_.width)) {
                sample[(c * in_.height + static_cast<std::size_t>(ih)) *
                           in_.width +
                       static_cast<std::size_t>(iw)] += row[idx];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

std::vector<ParamRef> Conv2d::params() {
  return {{"weight", &weight_, &grad_weight_},
          {"bias", &bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::unique_ptr<Conv2d>(new Conv2d());
  copy->in_ = in_;
  copy->out_ = out_;
  copy->kernel_ = kernel_;
  copy->stride_ = stride_;
  copy->pad_ = pad_;
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  copy->grad_weight_ = Tensor(weight_.shape());
  copy->grad_bias_ = Tensor(bias_.shape());
  return copy;
}

std::size_t Conv2d::flops_per_sample() const {
  return 2 * in_.channels * kernel_ * kernel_ * out_.flat();
}

// ------------------------------------------------------------- AvgPool2d

AvgPool2d::AvgPool2d(ImageDims in) : in_(in) {
  if (in.height % 2 != 0 || in.width % 2 != 0 || in.flat() == 0) {
    throw std::invalid_argument("AvgPool2d: needs even, non-empty extents");
  }
  out_ = {in.channels, in.height / 2, in.width / 2};
}

Tensor AvgPool2d::forward(const Tensor& input, bool /*train*/) {
  check_input(input, in_, "AvgPool2d");
  cached_batch_ = input.rows();
  Tensor out({cached_batch_, out_.flat()});
  for (std::size_t b = 0; b < cached_batch_; ++b) {
    const float* sample = input.data() + b * in_.flat();
    float* dst = out.data() + b * out_.flat();
    for (std::size_t c = 0; c < in_.channels; ++c) {
      for (std::size_t oh = 0; oh < out_.height; ++oh) {
        for (std::size_t ow = 0; ow < out_.width; ++ow) {
          const std::size_t base =
              (c * in_.height + 2 * oh) * in_.width + 2 * ow;
          const float sum = sample[base] + sample[base + 1] +
                            sample[base + in_.width] +
                            sample[base + in_.width + 1];
          dst[(c * out_.height + oh) * out_.width + ow] = sum * 0.25f;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  if (grad_output.cols() != out_.flat() ||
      grad_output.rows() != cached_batch_) {
    throw std::invalid_argument("AvgPool2d::backward: bad gradient shape");
  }
  Tensor dx({cached_batch_, in_.flat()});
  for (std::size_t b = 0; b < cached_batch_; ++b) {
    const float* g = grad_output.data() + b * out_.flat();
    float* dst = dx.data() + b * in_.flat();
    for (std::size_t c = 0; c < in_.channels; ++c) {
      for (std::size_t oh = 0; oh < out_.height; ++oh) {
        for (std::size_t ow = 0; ow < out_.width; ++ow) {
          const float grad =
              g[(c * out_.height + oh) * out_.width + ow] * 0.25f;
          const std::size_t base =
              (c * in_.height + 2 * oh) * in_.width + 2 * ow;
          dst[base] += grad;
          dst[base + 1] += grad;
          dst[base + in_.width] += grad;
          dst[base + in_.width + 1] += grad;
        }
      }
    }
  }
  return dx;
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(in_);
}

// ----------------------------------------------------------- BatchNorm2d

BatchNorm2d::BatchNorm2d(ImageDims in, float momentum, float epsilon)
    : in_(in),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Tensor::full({in.channels}, 1.0f)),
      beta_({in.channels}),
      grad_gamma_({in.channels}),
      grad_beta_({in.channels}),
      running_mean_({in.channels}),
      running_var_(Tensor::full({in.channels}, 1.0f)) {
  if (in.flat() == 0) {
    throw std::invalid_argument("BatchNorm2d: empty dims");
  }
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  check_input(input, in_, "BatchNorm2d");
  const std::size_t batch = input.rows();
  const std::size_t hw = in_.height * in_.width;
  Tensor out({batch, in_.flat()});

  if (train) {
    cached_batch_ = batch;
    batch_mean_ = Tensor({in_.channels});
    batch_inv_std_ = Tensor({in_.channels});
    cached_xhat_ = Tensor({batch, in_.flat()});
    const double count = static_cast<double>(batch * hw);
    for (std::size_t c = 0; c < in_.channels; ++c) {
      double sum = 0.0, sq = 0.0;
      for (std::size_t b = 0; b < batch; ++b) {
        const float* x = input.data() + b * in_.flat() + c * hw;
        for (std::size_t p = 0; p < hw; ++p) {
          sum += x[p];
          sq += static_cast<double>(x[p]) * x[p];
        }
      }
      const double mean = sum / count;
      const double var = std::max(0.0, sq / count - mean * mean);
      batch_mean_[c] = static_cast<float>(mean);
      const float inv_std =
          1.0f / std::sqrt(static_cast<float>(var) + epsilon_);
      batch_inv_std_[c] = inv_std;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);
      for (std::size_t b = 0; b < batch; ++b) {
        const float* x = input.data() + b * in_.flat() + c * hw;
        float* xh = cached_xhat_.data() + b * in_.flat() + c * hw;
        float* y = out.data() + b * in_.flat() + c * hw;
        for (std::size_t p = 0; p < hw; ++p) {
          xh[p] = (x[p] - static_cast<float>(mean)) * inv_std;
          y[p] = gamma_[c] * xh[p] + beta_[c];
        }
      }
    }
  } else {
    for (std::size_t c = 0; c < in_.channels; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + epsilon_);
      for (std::size_t b = 0; b < batch; ++b) {
        const float* x = input.data() + b * in_.flat() + c * hw;
        float* y = out.data() + b * in_.flat() + c * hw;
        for (std::size_t p = 0; p < hw; ++p) {
          y[p] = gamma_[c] * (x[p] - running_mean_[c]) * inv_std + beta_[c];
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (grad_output.rows() != cached_batch_ ||
      grad_output.cols() != in_.flat()) {
    throw std::invalid_argument("BatchNorm2d::backward: bad gradient shape");
  }
  const std::size_t batch = cached_batch_;
  const std::size_t hw = in_.height * in_.width;
  const double count = static_cast<double>(batch * hw);
  Tensor dx({batch, in_.flat()});

  for (std::size_t c = 0; c < in_.channels; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      const float* dy = grad_output.data() + b * in_.flat() + c * hw;
      const float* xh = cached_xhat_.data() + b * in_.flat() + c * hw;
      for (std::size_t p = 0; p < hw; ++p) {
        sum_dy += dy[p];
        sum_dy_xhat += static_cast<double>(dy[p]) * xh[p];
      }
    }
    grad_gamma_[c] += static_cast<float>(sum_dy_xhat);
    grad_beta_[c] += static_cast<float>(sum_dy);

    const float scale = gamma_[c] * batch_inv_std_[c] /
                        static_cast<float>(count);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* dy = grad_output.data() + b * in_.flat() + c * hw;
      const float* xh = cached_xhat_.data() + b * in_.flat() + c * hw;
      float* d = dx.data() + b * in_.flat() + c * hw;
      for (std::size_t p = 0; p < hw; ++p) {
        d[p] = scale * (static_cast<float>(count) * dy[p] -
                        static_cast<float>(sum_dy) -
                        xh[p] * static_cast<float>(sum_dy_xhat));
      }
    }
  }
  return dx;
}

std::vector<ParamRef> BatchNorm2d::params() {
  return {{"gamma", &gamma_, &grad_gamma_}, {"beta", &beta_, &grad_beta_}};
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  auto copy = std::make_unique<BatchNorm2d>(in_, momentum_, epsilon_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  copy->running_mean_ = running_mean_;
  copy->running_var_ = running_var_;
  return copy;
}

// --------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(ImageDims in, std::size_t out_channels,
                             std::size_t stride, util::Rng& rng)
    : in_(in) {
  conv1_ = std::make_unique<Conv2d>(in, out_channels, 3, stride, 1, rng);
  const ImageDims mid = conv1_->output_dims();
  bn1_ = std::make_unique<BatchNorm2d>(mid);
  conv2_ = std::make_unique<Conv2d>(mid, out_channels, 3, 1, 1, rng);
  out_ = conv2_->output_dims();
  bn2_ = std::make_unique<BatchNorm2d>(out_);
  if (stride != 1 || out_channels != in.channels) {
    shortcut_ = std::make_unique<Conv2d>(in, out_channels, 1, stride, 0,
                                         rng);
    if (!(shortcut_->output_dims() == out_)) {
      throw std::logic_error("ResidualBlock: shortcut geometry mismatch");
    }
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool train) {
  check_input(input, in_, "ResidualBlock");
  cached_input_ = input;
  Tensor h = conv1_->forward(input, train);
  h = bn1_->forward(h, train);
  cached_pre1_ = h;
  h = tensor::relu(h);
  h = conv2_->forward(h, train);
  h = bn2_->forward(h, train);
  Tensor sc = shortcut_ ? shortcut_->forward(input, train) : input;
  h += sc;
  cached_sum_ = h;
  return tensor::relu(h);
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  tensor::relu_backward(g, cached_sum_);

  // Residual path.
  Tensor gr = bn2_->backward(g);
  gr = conv2_->backward(gr);
  tensor::relu_backward(gr, cached_pre1_);
  gr = bn1_->backward(gr);
  gr = conv1_->backward(gr);

  // Shortcut path.
  Tensor gs = shortcut_ ? shortcut_->backward(g) : g;
  gr += gs;
  return gr;
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> out;
  for (Layer* layer :
       {static_cast<Layer*>(conv1_.get()), static_cast<Layer*>(bn1_.get()),
        static_cast<Layer*>(conv2_.get()), static_cast<Layer*>(bn2_.get()),
        static_cast<Layer*>(shortcut_.get())}) {
    if (!layer) continue;
    for (auto& p : layer->params()) out.push_back(p);
  }
  return out;
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  auto copy = std::unique_ptr<ResidualBlock>(new ResidualBlock());
  copy->in_ = in_;
  copy->out_ = out_;
  auto clone_conv = [](const std::unique_ptr<Conv2d>& src) {
    return src ? std::unique_ptr<Conv2d>(
                     static_cast<Conv2d*>(src->clone().release()))
               : nullptr;
  };
  auto clone_bn = [](const std::unique_ptr<BatchNorm2d>& src) {
    return std::unique_ptr<BatchNorm2d>(
        static_cast<BatchNorm2d*>(src->clone().release()));
  };
  copy->conv1_ = clone_conv(conv1_);
  copy->bn1_ = clone_bn(bn1_);
  copy->conv2_ = clone_conv(conv2_);
  copy->bn2_ = clone_bn(bn2_);
  copy->shortcut_ = clone_conv(shortcut_);
  return copy;
}

std::size_t ResidualBlock::flops_per_sample() const {
  std::size_t flops =
      conv1_->flops_per_sample() + conv2_->flops_per_sample();
  if (shortcut_) flops += shortcut_->flops_per_sample();
  return flops;
}

// --------------------------------------------------------- mini ResNet

Sequential build_mini_resnet(ImageDims input, std::size_t base_channels,
                             std::size_t num_classes, util::Rng& rng) {
  Sequential m;
  auto stem = std::make_unique<Conv2d>(input, base_channels, 3, 1, 1, rng);
  const ImageDims stem_out = stem->output_dims();
  m.add(std::move(stem));
  m.add(std::make_unique<BatchNorm2d>(stem_out));
  m.add(std::make_unique<Relu>());

  auto block1 =
      std::make_unique<ResidualBlock>(stem_out, base_channels, 1, rng);
  const ImageDims b1_out = block1->output_dims();
  m.add(std::move(block1));
  auto block2 =
      std::make_unique<ResidualBlock>(b1_out, 2 * base_channels, 2, rng);
  const ImageDims b2_out = block2->output_dims();
  m.add(std::move(block2));

  auto pool = std::make_unique<AvgPool2d>(b2_out);
  const ImageDims pooled = pool->output_dims();
  m.add(std::move(pool));
  m.add(std::make_unique<Dense>(pooled.flat(), num_classes, rng));
  return m;
}

}  // namespace nessa::nn
