#include "nessa/nn/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nessa/tensor/ops.hpp"

namespace nessa::nn {

PenultimateForward forward_with_penultimate(Sequential& model,
                                            const Tensor& inputs) {
  // Find the index of the last layer that has parameters (the classifier
  // head); capture its input during a manual forward walk.
  std::size_t head = model.layer_count();
  for (std::size_t i = model.layer_count(); i-- > 0;) {
    if (!model.layer(i).params().empty()) {
      head = i;
      break;
    }
  }
  if (head == model.layer_count()) {
    throw std::logic_error("forward_with_penultimate: model has no parameters");
  }
  PenultimateForward out;
  Tensor x = inputs;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (i == head) out.penultimate = x;
    x = model.layer(i).forward(x, /*train=*/false);
  }
  out.logits = std::move(x);
  return out;
}

EmbeddingResult compute_embeddings(Sequential& model, const Tensor& inputs,
                                   std::span<const Label> labels,
                                   EmbeddingKind kind, std::size_t batch_size) {
  if (inputs.rank() != 2) {
    throw std::invalid_argument("compute_embeddings: inputs must be rank 2");
  }
  const std::size_t n = inputs.rows();
  const std::size_t dim = inputs.cols();
  if (labels.size() != n) {
    throw std::invalid_argument("compute_embeddings: label count mismatch");
  }
  if (batch_size == 0) batch_size = n;

  SoftmaxCrossEntropy loss_fn;
  EmbeddingResult result;
  result.losses.resize(n);
  result.preds.resize(n);

  std::size_t classes = 0;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    Tensor batch({count, dim});
    std::copy_n(inputs.data() + start * dim, count * dim, batch.data());

    Tensor logits;
    Tensor penultimate;
    if (kind == EmbeddingKind::kScaledLogitGrad) {
      auto fwd = forward_with_penultimate(model, batch);
      logits = std::move(fwd.logits);
      penultimate = std::move(fwd.penultimate);
    } else {
      logits = model.forward(batch, /*train=*/false);
    }
    if (classes == 0) {
      classes = logits.cols();
      result.embeddings = Tensor({n, classes});
    }

    auto loss = loss_fn.forward(logits, labels.subspan(start, count));
    auto preds = tensor::argmax_rows(loss.probs);
    for (std::size_t i = 0; i < count; ++i) {
      result.losses[start + i] = loss.example_losses[i];
      result.preds[start + i] = preds[i];
      float scale = 1.0f;
      if (kind == EmbeddingKind::kScaledLogitGrad) {
        scale = tensor::l2_norm(penultimate.row(i));
        scale = std::max(scale, 1e-6f);
      }
      const Label y = labels[start + i];
      float* dst = result.embeddings.data() + (start + i) * classes;
      const float* probs = loss.probs.data() + i * classes;
      for (std::size_t c = 0; c < classes; ++c) {
        const float onehot = (static_cast<Label>(c) == y) ? 1.0f : 0.0f;
        dst[c] = (probs[c] - onehot) * scale;
      }
    }
  }
  return result;
}

}  // namespace nessa::nn
