#include "nessa/nn/adam.hpp"

#include <cmath>

namespace nessa::nn {

Adam::Slot& Adam::slot_for(const ParamRef& param) {
  for (auto& slot : slots_) {
    if (slot.key == param.value) return slot;
  }
  slots_.push_back(
      {param.value, Tensor(param.value->shape()), Tensor(param.value->shape())});
  return slots_.back();
}

void Adam::step(std::vector<ParamRef> params) {
  ++t_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  for (auto& p : params) {
    auto& slot = slot_for(p);
    Tensor& w = *p.value;
    Tensor& g = *p.grad;
    for (std::size_t i = 0; i < w.size(); ++i) {
      slot.m[i] = b1 * slot.m[i] + (1.0f - b1) * g[i];
      slot.v[i] = b2 * slot.v[i] + (1.0f - b2) * g[i] * g[i];
      const float mhat = slot.m[i] / bias1;
      const float vhat = slot.v[i] / bias2;
      w[i] -= config_.learning_rate *
              (mhat / (std::sqrt(vhat) + config_.epsilon) +
               config_.weight_decay * w[i]);
    }
  }
}

}  // namespace nessa::nn
