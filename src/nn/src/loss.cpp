#include "nessa/nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nessa/tensor/ops.hpp"

namespace nessa::nn {

LossResult SoftmaxCrossEntropy::forward(const Tensor& logits,
                                        std::span<const Label> labels) const {
  if (logits.rank() != 2) {
    throw std::invalid_argument("SoftmaxCrossEntropy: logits must be rank 2");
  }
  const std::size_t batch = logits.rows();
  const std::size_t classes = logits.cols();
  if (labels.size() != batch) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }
  LossResult out;
  out.probs = logits;
  tensor::softmax_rows(out.probs);
  out.example_losses.resize(batch);
  double total = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const Label y = labels[i];
    if (y < 0 || static_cast<std::size_t>(y) >= classes) {
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    }
    const float p = out.probs(i, static_cast<std::size_t>(y));
    const float loss = -std::log(std::max(p, 1e-12f));
    out.example_losses[i] = loss;
    total += loss;
  }
  out.mean_loss = static_cast<float>(total / static_cast<double>(batch));
  return out;
}

Tensor SoftmaxCrossEntropy::backward(const LossResult& result,
                                     std::span<const Label> labels) const {
  const std::size_t batch = result.probs.rows();
  if (labels.size() != batch) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }
  Tensor grad = result.probs;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    grad(i, static_cast<std::size_t>(labels[i])) -= 1.0f;
  }
  grad *= inv_batch;
  return grad;
}

}  // namespace nessa::nn
