#include "nessa/nn/dropout.hpp"

#include <stdexcept>

namespace nessa::nn {

Dropout::Dropout(float rate, util::Rng& rng) : rate_(rate), rng_(rng.fork()) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  last_was_train_ = train;
  if (!train || rate_ == 0.0f) return input;
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  mask_ = Tensor(input.shape());
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool kept = rng_.uniform() < keep;
    mask_[i] = kept ? scale : 0.0f;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_was_train_ || rate_ == 0.0f) return grad_output;
  Tensor grad = grad_output;
  grad.hadamard(mask_);
  return grad;
}

std::unique_ptr<Layer> Dropout::clone() const {
  util::Rng fresh(rng_);
  auto copy = std::make_unique<Dropout>(rate_, fresh);
  return copy;
}

}  // namespace nessa::nn
