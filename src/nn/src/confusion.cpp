#include "nessa/nn/confusion.hpp"

#include <algorithm>
#include <stdexcept>

#include "nessa/tensor/ops.hpp"

namespace nessa::nn {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  if (num_classes == 0) {
    throw std::invalid_argument("ConfusionMatrix: need at least one class");
  }
}

void ConfusionMatrix::add(Label truth, Label predicted) {
  if (truth < 0 || predicted < 0 ||
      static_cast<std::size_t>(truth) >= classes_ ||
      static_cast<std::size_t>(predicted) >= classes_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++counts_[static_cast<std::size_t>(truth) * classes_ +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(Label truth, Label predicted) const {
  if (truth < 0 || predicted < 0 ||
      static_cast<std::size_t>(truth) >= classes_ ||
      static_cast<std::size_t>(predicted) >= classes_) {
    throw std::out_of_range("ConfusionMatrix::count: label out of range");
  }
  return counts_[static_cast<std::size_t>(truth) * classes_ +
                 static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    diag += counts_[c * classes_ + c];
  }
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(Label cls) const {
  const auto c = static_cast<std::size_t>(cls);
  if (cls < 0 || c >= classes_) {
    throw std::out_of_range("ConfusionMatrix::recall: label out of range");
  }
  std::size_t row = 0;
  for (std::size_t p = 0; p < classes_; ++p) row += counts_[c * classes_ + p];
  return row ? static_cast<double>(counts_[c * classes_ + c]) /
                   static_cast<double>(row)
             : 0.0;
}

double ConfusionMatrix::precision(Label cls) const {
  const auto c = static_cast<std::size_t>(cls);
  if (cls < 0 || c >= classes_) {
    throw std::out_of_range("ConfusionMatrix::precision: label out of range");
  }
  std::size_t col = 0;
  for (std::size_t t = 0; t < classes_; ++t) col += counts_[t * classes_ + c];
  return col ? static_cast<double>(counts_[c * classes_ + c]) /
                   static_cast<double>(col)
             : 0.0;
}

double ConfusionMatrix::macro_recall() const {
  double sum = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    std::size_t row = 0;
    for (std::size_t p = 0; p < classes_; ++p) {
      row += counts_[c * classes_ + p];
    }
    if (row) {
      sum += static_cast<double>(counts_[c * classes_ + c]) /
             static_cast<double>(row);
      ++present;
    }
  }
  return present ? sum / static_cast<double>(present) : 0.0;
}

ConfusionMatrix evaluate_confusion(Sequential& model, const Tensor& inputs,
                                   std::span<const Label> labels,
                                   std::size_t batch_size) {
  if (inputs.rank() != 2 || inputs.rows() != labels.size()) {
    throw std::invalid_argument("evaluate_confusion: shape mismatch");
  }
  const std::size_t n = inputs.rows();
  const std::size_t dim = inputs.cols();
  if (batch_size == 0) batch_size = std::max<std::size_t>(1, n);

  std::size_t classes = 0;
  std::vector<std::pair<Label, Label>> pairs;
  pairs.reserve(n);
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    Tensor batch({count, dim});
    std::copy_n(inputs.data() + start * dim, count * dim, batch.data());
    Tensor logits = model.forward(batch, /*train=*/false);
    classes = logits.cols();
    auto preds = tensor::argmax_rows(logits);
    for (std::size_t i = 0; i < count; ++i) {
      pairs.emplace_back(labels[start + i], static_cast<Label>(preds[i]));
    }
  }
  ConfusionMatrix cm(std::max<std::size_t>(classes, 1));
  for (auto [truth, predicted] : pairs) cm.add(truth, predicted);
  return cm;
}

}  // namespace nessa::nn
