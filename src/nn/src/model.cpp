#include "nessa/nn/model.hpp"

#include <stdexcept>

#include "nessa/nn/activation.hpp"
#include "nessa/nn/dense.hpp"
#include "nessa/nn/dropout.hpp"

namespace nessa::nn {

void Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) out.push_back(p);
  }
  return out;
}

void Sequential::zero_grads() {
  for (auto& p : params()) p.grad->fill(0.0f);
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    // params() is non-const by interface; clone-free workaround via cast is
    // safe because we only read sizes.
    for (auto& p : const_cast<Layer&>(*layer).params()) n += p.value->size();
  }
  return n;
}

std::size_t Sequential::flops_per_sample() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer->flops_per_sample();
  return n;
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) copy.layers_.push_back(layer->clone());
  return copy;
}

void Sequential::load_params_from(const Sequential& other) {
  auto mine = params();
  auto theirs = const_cast<Sequential&>(other).params();
  if (mine.size() != theirs.size()) {
    throw std::invalid_argument("load_params_from: architecture mismatch");
  }
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].value->shape() != theirs[i].value->shape()) {
      throw std::invalid_argument("load_params_from: parameter shape mismatch");
    }
    *mine[i].value = *theirs[i].value;
  }
}

Sequential Sequential::mlp(const std::vector<std::size_t>& dims,
                           util::Rng& rng, float dropout_rate) {
  if (dims.size() < 2) {
    throw std::invalid_argument("Sequential::mlp: need at least in/out dims");
  }
  Sequential m;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    m.add(std::make_unique<Dense>(dims[i], dims[i + 1], rng));
    const bool hidden = i + 2 < dims.size();
    if (hidden) {
      m.add(std::make_unique<Relu>());
      if (dropout_rate > 0.0f) {
        m.add(std::make_unique<Dropout>(dropout_rate, rng));
      }
    }
  }
  return m;
}

const ModelSpec& model_spec(const std::string& paper_name) {
  // paper_gflops_per_sample / params: standard published numbers for the
  // paper's networks at the native input sizes used per dataset.
  static const std::vector<ModelSpec> kSpecs = {
      {"ResNet-20", {128, 64}, 0.0f, 0.041, 0.27},
      {"ResNet-18", {256, 128}, 0.0f, 1.82, 11.7},
      {"ResNet-50", {384, 192}, 0.0f, 4.09, 25.6},
  };
  for (const auto& spec : kSpecs) {
    if (spec.paper_name == paper_name) return spec;
  }
  throw std::invalid_argument("model_spec: unknown model " + paper_name);
}

Sequential build_model(const ModelSpec& spec, std::size_t input_dim,
                       std::size_t num_classes, util::Rng& rng) {
  std::vector<std::size_t> dims;
  dims.push_back(input_dim);
  for (std::size_t h : spec.hidden) dims.push_back(h);
  dims.push_back(num_classes);
  return Sequential::mlp(dims, rng, spec.dropout);
}

}  // namespace nessa::nn
