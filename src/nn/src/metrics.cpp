#include "nessa/nn/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "nessa/tensor/ops.hpp"

namespace nessa::nn {

EvalResult evaluate(Sequential& model, const Tensor& inputs,
                    std::span<const Label> labels, std::size_t batch_size) {
  if (inputs.rank() != 2) {
    throw std::invalid_argument("evaluate: inputs must be rank 2");
  }
  const std::size_t n = inputs.rows();
  const std::size_t dim = inputs.cols();
  if (labels.size() != n) {
    throw std::invalid_argument("evaluate: label count mismatch");
  }
  if (n == 0) return {};
  if (batch_size == 0) batch_size = n;

  SoftmaxCrossEntropy loss_fn;
  std::size_t correct = 0;
  double loss_total = 0.0;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    Tensor batch({count, dim});
    std::copy_n(inputs.data() + start * dim, count * dim, batch.data());
    Tensor logits = model.forward(batch, /*train=*/false);
    auto loss = loss_fn.forward(logits, labels.subspan(start, count));
    auto preds = tensor::argmax_rows(loss.probs);
    for (std::size_t i = 0; i < count; ++i) {
      if (static_cast<Label>(preds[i]) == labels[start + i]) ++correct;
      loss_total += loss.example_losses[i];
    }
  }
  EvalResult out;
  out.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  out.mean_loss = loss_total / static_cast<double>(n);
  return out;
}

}  // namespace nessa::nn
