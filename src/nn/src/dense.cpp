#include "nessa/nn/dense.hpp"

#include "nessa/tensor/ops.hpp"

namespace nessa::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::he_uniform({in_features, out_features}, in_features, rng)),
      bias_({out_features}),
      grad_weight_({in_features, out_features}),
      grad_bias_({out_features}) {}

Tensor Dense::forward(const Tensor& input, bool /*train*/) {
  cached_input_ = input;
  Tensor out = tensor::matmul(input, weight_);
  tensor::add_row_vector(out, bias_);
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  // dW += x^T g ; db += column sums of g ; dx = g W^T.
  grad_weight_ += tensor::matmul_at_b(cached_input_, grad_output);
  grad_bias_ += tensor::column_sums(grad_output);
  return tensor::matmul_a_bt(grad_output, weight_);
}

std::vector<ParamRef> Dense::params() {
  return {{"weight", &weight_, &grad_weight_},
          {"bias", &bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Dense::clone() const {
  auto copy = std::unique_ptr<Dense>(new Dense());
  copy->in_features_ = in_features_;
  copy->out_features_ = out_features_;
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  copy->grad_weight_ = Tensor({in_features_, out_features_});
  copy->grad_bias_ = Tensor({out_features_});
  return copy;
}

}  // namespace nessa::nn
