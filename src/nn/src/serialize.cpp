#include "nessa/nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace nessa::nn {

namespace {

template <typename T>
void put(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("load_weights: truncated stream");
  return value;
}

}  // namespace

void save_weights(Sequential& model, std::ostream& os) {
  auto params = model.params();
  put<std::uint32_t>(os, kWeightsMagic);
  put<std::uint32_t>(os, kWeightsVersion);
  put<std::uint64_t>(os, params.size());
  for (auto& p : params) {
    put<std::uint32_t>(os, static_cast<std::uint32_t>(p.name.size()));
    os.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    const auto& shape = p.value->shape();
    put<std::uint32_t>(os, static_cast<std::uint32_t>(shape.size()));
    for (std::size_t d : shape) put<std::uint64_t>(os, d);
    os.write(reinterpret_cast<const char*>(p.value->data()),
             static_cast<std::streamsize>(p.value->size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("save_weights: stream write failed");
}

void load_weights(Sequential& model, std::istream& is) {
  if (get<std::uint32_t>(is) != kWeightsMagic) {
    throw std::runtime_error("load_weights: bad magic");
  }
  if (get<std::uint32_t>(is) != kWeightsVersion) {
    throw std::runtime_error("load_weights: unsupported version");
  }
  auto params = model.params();
  const auto count = get<std::uint64_t>(is);
  if (count != params.size()) {
    throw std::runtime_error("load_weights: parameter count mismatch");
  }
  for (auto& p : params) {
    const auto name_len = get<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto rank = get<std::uint32_t>(is);
    tensor::Shape shape(rank);
    for (auto& d : shape) {
      d = static_cast<std::size_t>(get<std::uint64_t>(is));
    }
    if (shape != p.value->shape()) {
      throw std::runtime_error("load_weights: shape mismatch for " + name);
    }
    is.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(p.value->size() * sizeof(float)));
    if (!is) throw std::runtime_error("load_weights: truncated stream");
  }
}

void save_weights_file(Sequential& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_weights_file: cannot open " + path);
  save_weights(model, os);
}

void load_weights_file(Sequential& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_weights_file: cannot open " + path);
  load_weights(model, is);
}

}  // namespace nessa::nn
