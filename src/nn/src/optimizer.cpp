#include "nessa/nn/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nessa::nn {

Tensor& Sgd::velocity_for(const ParamRef& param) {
  for (auto& slot : slots_) {
    if (slot.key == param.value) return slot.velocity;
  }
  slots_.push_back({param.value, Tensor(param.value->shape())});
  return slots_.back().velocity;
}

void Sgd::step(std::vector<ParamRef> params) {
  const float lr = config_.learning_rate;
  const float mu = config_.momentum;
  const float wd = config_.weight_decay;
  for (auto& p : params) {
    Tensor& v = velocity_for(p);
    Tensor& w = *p.value;
    Tensor& g = *p.grad;
    for (std::size_t i = 0; i < w.size(); ++i) {
      float grad = g[i] + wd * w[i];
      v[i] = mu * v[i] + grad;
      const float update = config_.nesterov ? grad + mu * v[i] : v[i];
      w[i] -= lr * update;
    }
  }
}

std::vector<std::vector<float>> Sgd::export_velocities(
    const std::vector<ParamRef>& params) const {
  std::vector<std::vector<float>> out;
  out.reserve(params.size());
  for (const auto& p : params) {
    const Slot* found = nullptr;
    for (const auto& slot : slots_) {
      if (slot.key == p.value) {
        found = &slot;
        break;
      }
    }
    if (found == nullptr) {
      out.emplace_back();
    } else {
      out.emplace_back(found->velocity.data(),
                       found->velocity.data() + found->velocity.size());
    }
  }
  return out;
}

void Sgd::import_velocities(const std::vector<ParamRef>& params,
                            const std::vector<std::vector<float>>& velocities) {
  if (params.size() != velocities.size()) {
    throw std::invalid_argument(
        "Sgd::import_velocities: parameter count mismatch");
  }
  slots_.clear();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (velocities[i].empty()) continue;
    if (velocities[i].size() != params[i].value->size()) {
      throw std::invalid_argument(
          "Sgd::import_velocities: velocity size mismatch for " +
          params[i].name);
    }
    Tensor v(params[i].value->shape());
    std::copy(velocities[i].begin(), velocities[i].end(), v.data());
    slots_.push_back({params[i].value, std::move(v)});
  }
}

StepLrSchedule StepLrSchedule::paper_scaled(std::size_t total_epochs) {
  auto scale = [total_epochs](std::size_t paper_epoch) {
    return static_cast<std::size_t>(
        std::round(static_cast<double>(paper_epoch) / 200.0 *
                   static_cast<double>(total_epochs)));
  };
  return StepLrSchedule(0.1f, {scale(60), scale(120), scale(160)}, 0.2f);
}

float StepLrSchedule::lr_at(std::size_t epoch) const noexcept {
  float lr = base_lr_;
  for (std::size_t m : milestones_) {
    if (epoch >= m && m > 0) lr *= factor_;
  }
  return lr;
}

}  // namespace nessa::nn
