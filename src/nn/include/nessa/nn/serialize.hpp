// Model checkpointing: save/load all parameter tensors of a Sequential to
// a binary stream or file. The format is a parameter-blob list keyed by
// order + shape (architecture must match at load; names are stored for
// diagnostics). Used for checkpoint/resume in long runs and for shipping
// the selection model to another process.
//
// Layout (little-endian):
//   magic "NSWT", u32 version, u64 param_count,
//   per parameter: u32 name_len, name bytes, u32 rank, u64 dims[rank],
//                  f32 data[numel]
#pragma once

#include <iosfwd>
#include <string>

#include "nessa/nn/model.hpp"

namespace nessa::nn {

inline constexpr std::uint32_t kWeightsMagic = 0x5457534e;  // "NSWT"
inline constexpr std::uint32_t kWeightsVersion = 1;

/// Write all parameters of `model` to `os`. Throws std::runtime_error on
/// stream failure.
void save_weights(Sequential& model, std::ostream& os);
void save_weights_file(Sequential& model, const std::string& path);

/// Read parameters into `model`. The model must already have the matching
/// architecture (same parameter count, shapes, in order); throws
/// std::runtime_error on mismatch or malformed input.
void load_weights(Sequential& model, std::istream& is);
void load_weights_file(Sequential& model, const std::string& path);

}  // namespace nessa::nn
