// Inverted dropout: active only in training mode; identity at inference.
#pragma once

#include "nessa/nn/layer.hpp"

namespace nessa::nn {

class Dropout final : public Layer {
 public:
  /// rate in [0, 1): probability of zeroing an activation.
  Dropout(float rate, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "dropout"; }

  [[nodiscard]] float rate() const noexcept { return rate_; }

  /// The layer's private mask stream, exposed for checkpoint/restore (the
  /// stream advances every training forward, so bit-identical resume must
  /// save and restore it alongside the trainer's own rng).
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

 private:
  float rate_;
  util::Rng rng_;
  Tensor mask_;
  bool last_was_train_ = false;
};

}  // namespace nessa::nn
