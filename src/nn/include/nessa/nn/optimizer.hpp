// SGD with Nesterov momentum and decoupled L2 weight decay, plus the paper's
// step learning-rate schedule (§4.1: lr 0.1 divided by 5 at epochs 60, 120,
// 160; momentum 0.9; weight decay 5e-4).
#pragma once

#include <vector>

#include "nessa/nn/layer.hpp"

namespace nessa::nn {

struct SgdConfig {
  float learning_rate = 0.1f;
  float momentum = 0.9f;
  bool nesterov = true;
  float weight_decay = 5e-4f;
};

class Sgd {
 public:
  explicit Sgd(SgdConfig config = {}) : config_(config) {}

  /// Apply one update to the given parameter set using accumulated grads.
  /// Velocity buffers are keyed by parameter identity (pointer) and created
  /// lazily, so the same optimizer must be reused across steps for momentum
  /// to take effect.
  void step(std::vector<ParamRef> params);

  void set_learning_rate(float lr) noexcept { config_.learning_rate = lr; }
  [[nodiscard]] float learning_rate() const noexcept {
    return config_.learning_rate;
  }
  [[nodiscard]] const SgdConfig& config() const noexcept { return config_; }

  /// Velocity buffers in `params` order, for checkpoint/restore. A slot
  /// that has not been created yet exports as an empty vector; import
  /// recreates exactly the exported slots keyed to the given params.
  [[nodiscard]] std::vector<std::vector<float>> export_velocities(
      const std::vector<ParamRef>& params) const;
  void import_velocities(const std::vector<ParamRef>& params,
                         const std::vector<std::vector<float>>& velocities);

 private:
  SgdConfig config_;
  struct Slot {
    const Tensor* key = nullptr;
    Tensor velocity;
  };
  std::vector<Slot> slots_;

  Tensor& velocity_for(const ParamRef& param);
};

/// Piecewise-constant LR schedule: lr(epoch) = base * factor^(#milestones <= epoch).
class StepLrSchedule {
 public:
  StepLrSchedule(float base_lr, std::vector<std::size_t> milestones,
                 float factor)
      : base_lr_(base_lr), milestones_(std::move(milestones)), factor_(factor) {}

  /// The paper's schedule: 0.1, divided by 5 at epochs 60/120/160.
  static StepLrSchedule paper_default() {
    return StepLrSchedule(0.1f, {60, 120, 160}, 0.2f);
  }

  /// Schedule scaled to a different total epoch budget, keeping the paper's
  /// milestone fractions (60/200, 120/200, 160/200).
  static StepLrSchedule paper_scaled(std::size_t total_epochs);

  [[nodiscard]] float lr_at(std::size_t epoch) const noexcept;

 private:
  float base_lr_;
  std::vector<std::size_t> milestones_;
  float factor_;
};

}  // namespace nessa::nn
