// Fully-connected layer: y = x W + b, with cached input for backward.
#pragma once

#include "nessa/nn/layer.hpp"

namespace nessa::nn {

class Dense final : public Layer {
 public:
  /// He-uniform weight init, zero bias.
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "dense"; }
  [[nodiscard]] std::size_t flops_per_sample() const override {
    return 2 * in_features_ * out_features_;
  }

  [[nodiscard]] std::size_t in_features() const noexcept { return in_features_; }
  [[nodiscard]] std::size_t out_features() const noexcept {
    return out_features_;
  }

  [[nodiscard]] const Tensor& weight() const noexcept { return weight_; }
  [[nodiscard]] Tensor& weight() noexcept { return weight_; }
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_; }
  [[nodiscard]] Tensor& bias() noexcept { return bias_; }

 private:
  Dense() = default;

  std::size_t in_features_ = 0;
  std::size_t out_features_ = 0;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;  // [batch, in]
};

}  // namespace nessa::nn
