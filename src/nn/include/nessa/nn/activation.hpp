// Stateless activation layers (ReLU, Tanh) with cached pre-activations.
#pragma once

#include "nessa/nn/layer.hpp"

namespace nessa::nn {

class Relu final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  Tensor cached_input_;
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "tanh"; }

 private:
  Tensor cached_output_;
};

}  // namespace nessa::nn
