// Per-example gradient embeddings — the signal the selection model ranks.
//
// Following CRAIG (Mirzasoleiman et al., ICML'20) and the NeSSA selection
// model (§3.1), the gradient of the loss w.r.t. the last layer's
// pre-activations, g_i = p_i - onehot(y_i), is used as a cheap, provably
// effective proxy for the full per-example gradient: distances between these
// low-dimensional vectors upper-bound (up to a constant) distances between
// full gradients. The "scaled" variant multiplies by the penultimate
// activation norm, recovering the exact norm of the last-layer weight
// gradient outer(a_i, g_i).
#pragma once

#include <span>

#include "nessa/nn/loss.hpp"
#include "nessa/nn/model.hpp"

namespace nessa::nn {

enum class EmbeddingKind {
  kLogitGrad,        ///< g_i = p_i - onehot(y_i)           (dim = classes)
  kScaledLogitGrad,  ///< g_i scaled by ||penultimate a_i||  (dim = classes)
};

struct EmbeddingResult {
  Tensor embeddings;               ///< [n, classes]
  std::vector<float> losses;       ///< per-example NLL, length n
  std::vector<std::size_t> preds;  ///< argmax predictions, length n
};

/// Run `model` forward (inference mode) over the rows of `inputs` and build
/// gradient embeddings against `labels`. Batched internally.
EmbeddingResult compute_embeddings(Sequential& model, const Tensor& inputs,
                                   std::span<const Label> labels,
                                   EmbeddingKind kind,
                                   std::size_t batch_size = 256);

/// Forward pass that also captures the activation entering the last
/// parameterized (Dense) layer. Used by the scaled embedding and tested
/// directly.
struct PenultimateForward {
  Tensor logits;
  Tensor penultimate;
};
PenultimateForward forward_with_penultimate(Sequential& model,
                                            const Tensor& inputs);

}  // namespace nessa::nn
