// Softmax cross-entropy with integer class labels.
//
// Exposes both the batch-mean loss (for training) and per-example losses
// (the training-dynamics signal NeSSA's subset biasing consumes, §3.2.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nessa/tensor/tensor.hpp"

namespace nessa::nn {

using tensor::Tensor;
using Label = std::int32_t;

struct LossResult {
  float mean_loss = 0.0f;              ///< Mean NLL over the batch.
  std::vector<float> example_losses;   ///< Per-example NLL.
  Tensor probs;                        ///< Softmax probabilities [B, C].
};

class SoftmaxCrossEntropy {
 public:
  /// Forward: logits [B, C], labels length B with values in [0, C).
  /// Throws std::invalid_argument on shape/label mismatch.
  LossResult forward(const Tensor& logits, std::span<const Label> labels) const;

  /// Backward from the cached probabilities of a forward call:
  /// dL/dlogits = (probs - onehot(labels)) / B  (mean reduction).
  Tensor backward(const LossResult& result, std::span<const Label> labels) const;
};

}  // namespace nessa::nn
