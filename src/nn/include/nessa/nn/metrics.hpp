// Evaluation metrics over a model + labelled feature matrix.
#pragma once

#include <span>

#include "nessa/nn/loss.hpp"
#include "nessa/nn/model.hpp"

namespace nessa::nn {

struct EvalResult {
  double accuracy = 0.0;   ///< fraction correct in [0, 1]
  double mean_loss = 0.0;  ///< mean NLL
};

/// Batched inference-mode evaluation.
EvalResult evaluate(Sequential& model, const Tensor& inputs,
                    std::span<const Label> labels,
                    std::size_t batch_size = 512);

}  // namespace nessa::nn
