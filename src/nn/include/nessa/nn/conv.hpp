// Convolutional layers for image-shaped inputs, enabling ResNet-style
// substrate targets (the paper's networks) instead of MLP stand-ins.
//
// Inputs stay rank-2 [batch, C*H*W] at the Sequential interface (row-major
// CHW per sample); each layer carries its spatial geometry. Convolution is
// im2col + GEMM, the standard lowering, so it reuses the blocked matmul.
#pragma once

#include "nessa/nn/layer.hpp"
#include "nessa/nn/model.hpp"

namespace nessa::nn {

/// Spatial geometry of an activation tensor.
struct ImageDims {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;

  [[nodiscard]] std::size_t flat() const noexcept {
    return channels * height * width;
  }
  friend bool operator==(const ImageDims&, const ImageDims&) = default;
};

/// 2D convolution, stride `stride`, symmetric zero padding `pad`,
/// kernel k x k. He-uniform weight init, zero bias.
class Conv2d final : public Layer {
 public:
  Conv2d(ImageDims in, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "conv2d"; }
  [[nodiscard]] std::size_t flops_per_sample() const override;

  [[nodiscard]] ImageDims input_dims() const noexcept { return in_; }
  [[nodiscard]] ImageDims output_dims() const noexcept { return out_; }
  [[nodiscard]] const Tensor& weight() const noexcept { return weight_; }
  [[nodiscard]] Tensor& weight() noexcept { return weight_; }

 private:
  Conv2d() = default;

  /// im2col: [B, C*H*W] -> [B*OH*OW, C*k*k] patches.
  Tensor im2col(const Tensor& input) const;

  ImageDims in_{};
  ImageDims out_{};
  std::size_t kernel_ = 0;
  std::size_t stride_ = 0;
  std::size_t pad_ = 0;
  Tensor weight_;       // [C*k*k, out_channels]
  Tensor bias_;         // [out_channels]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_cols_;  // [B*OH*OW, C*k*k]
  std::size_t cached_batch_ = 0;
};

/// 2x2 average pooling (stride 2). Keeps backward trivial and is what the
/// mini-ResNet uses for downsampling before the classifier head.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(ImageDims in);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "avgpool2d"; }

  [[nodiscard]] ImageDims output_dims() const noexcept { return out_; }

 private:
  ImageDims in_{};
  ImageDims out_{};
  std::size_t cached_batch_ = 0;
};

/// Per-channel batch normalization over [B, C, H, W] activations with
/// learnable scale/shift and running statistics for inference.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(ImageDims in, float momentum = 0.1f,
                       float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "batchnorm2d"; }

 private:
  ImageDims in_{};
  float momentum_;
  float epsilon_;
  Tensor gamma_;  // [C]
  Tensor beta_;   // [C]
  Tensor grad_gamma_;
  Tensor grad_beta_;
  Tensor running_mean_;  // [C]
  Tensor running_var_;   // [C]
  // Cached train-mode statistics for backward.
  Tensor cached_xhat_;   // [B, C*H*W]
  Tensor batch_mean_;    // [C]
  Tensor batch_inv_std_; // [C]
  std::size_t cached_batch_ = 0;
};

/// Pre-activation-free basic residual block:
///   y = ReLU( BN(Conv(BN(Conv(x)) after ReLU)) + shortcut(x) )
/// with an optional 1x1 strided projection shortcut when geometry changes.
class ResidualBlock final : public Layer {
 public:
  /// stride 1 keeps geometry; stride 2 halves H/W (projection shortcut).
  ResidualBlock(ImageDims in, std::size_t out_channels, std::size_t stride,
                util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "residual"; }
  [[nodiscard]] std::size_t flops_per_sample() const override;

  [[nodiscard]] ImageDims output_dims() const noexcept { return out_; }

 private:
  ResidualBlock() = default;

  ImageDims in_{};
  ImageDims out_{};
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> shortcut_;  // null when identity
  Tensor cached_pre1_;                // conv1+bn1 pre-activation
  Tensor cached_sum_;                 // residual sum pre-activation
  Tensor cached_input_;
};

/// A small ResNet for image-shaped substrate data:
///   Conv(3x3, base) -> BN -> ReLU
///   -> ResidualBlock(base) -> ResidualBlock(2*base, stride 2)
///   -> AvgPool(2x2) -> Dense(classes)
Sequential build_mini_resnet(ImageDims input, std::size_t base_channels,
                             std::size_t num_classes, util::Rng& rng);

}  // namespace nessa::nn
