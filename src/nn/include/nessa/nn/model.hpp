// Sequential model container plus the model registry used to stand in for
// the paper's ResNet-20/18/50 targets (see DESIGN.md §1: the accuracy-side
// experiments train real models on synthetic data, so each paper network maps
// to an MLP of proportional capacity; the timing-side experiments use the
// analytic FLOPs model in src/smartssd).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nessa/nn/layer.hpp"

namespace nessa::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Movable, non-copyable (use clone() for deep copies).
  Sequential(Sequential&&) noexcept = default;
  Sequential& operator=(Sequential&&) noexcept = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  void add(std::unique_ptr<Layer> layer);

  /// Forward through all layers. `train` toggles dropout etc.
  Tensor forward(const Tensor& input, bool train);

  /// Backward through all layers; accumulates parameter gradients.
  Tensor backward(const Tensor& grad_output);

  /// All parameter/grad pairs, layer order.
  std::vector<ParamRef> params();

  /// Zero all gradient accumulators.
  void zero_grads();

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t parameter_count() const;

  /// Forward multiply-accumulate count per sample.
  [[nodiscard]] std::size_t flops_per_sample() const;

  /// Deep copy of the architecture and weights.
  [[nodiscard]] Sequential clone() const;

  /// Copy parameter values from another model with identical architecture.
  void load_params_from(const Sequential& other);

  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const {
    return *layers_.at(i);
  }

  /// Build a ReLU MLP: dims = {in, h1, ..., out}. Optional dropout after
  /// each hidden activation.
  static Sequential mlp(const std::vector<std::size_t>& dims, util::Rng& rng,
                        float dropout_rate = 0.0f);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Architecture spec for a paper target network mapped onto our substrate.
struct ModelSpec {
  std::string paper_name;              ///< e.g. "ResNet-20"
  std::vector<std::size_t> hidden;     ///< hidden layer widths
  float dropout = 0.0f;
  /// Forward GFLOPs per sample of the *paper* network at its native input
  /// resolution; drives the analytic GPU timing model.
  double paper_gflops_per_sample = 0.0;
  /// Parameter count (millions) of the paper network; drives quantized
  /// weight-transfer byte accounting in the feedback loop.
  double paper_params_millions = 0.0;
};

/// Registry of the three paper networks. Throws on unknown name.
const ModelSpec& model_spec(const std::string& paper_name);

/// Instantiate the substrate model for a spec given dataset dims.
Sequential build_model(const ModelSpec& spec, std::size_t input_dim,
                       std::size_t num_classes, util::Rng& rng);

}  // namespace nessa::nn
