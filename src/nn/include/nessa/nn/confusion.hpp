// Per-class evaluation: confusion matrix and per-class accuracy/recall.
// Useful for diagnosing which classes a coreset under-serves (e.g. the
// rare-mode analysis behind the Fig. 5 many-class deviation).
#pragma once

#include <span>
#include <vector>

#include "nessa/nn/loss.hpp"
#include "nessa/nn/model.hpp"

namespace nessa::nn {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  /// Count one (true label, predicted label) observation.
  void add(Label truth, Label predicted);

  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_; }
  [[nodiscard]] std::size_t count(Label truth, Label predicted) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Overall accuracy (trace / total); 0 for empty.
  [[nodiscard]] double accuracy() const;

  /// Recall of one class (diagonal / row sum); 0 when the class is absent.
  [[nodiscard]] double recall(Label cls) const;

  /// Precision of one class (diagonal / column sum); 0 when never predicted.
  [[nodiscard]] double precision(Label cls) const;

  /// Mean per-class recall (macro accuracy) over classes that appear.
  [[nodiscard]] double macro_recall() const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // [truth * classes + predicted]
};

/// Run inference over a labelled set and build the confusion matrix.
ConfusionMatrix evaluate_confusion(Sequential& model, const Tensor& inputs,
                                   std::span<const Label> labels,
                                   std::size_t batch_size = 512);

}  // namespace nessa::nn
