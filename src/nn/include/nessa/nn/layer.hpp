// Layer abstraction for the NN substrate.
//
// NeSSA's target models in the paper are ResNets trained on a GPU; our
// substrate (see DESIGN.md §1) trains real models on synthetic data with the
// same optimizer/schedule, so layers implement explicit forward/backward
// passes over [batch, features] tensors. Parameters and their gradients are
// exposed as parallel spans so optimizers and the quantizer can walk them
// generically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nessa/tensor/tensor.hpp"
#include "nessa/util/rng.hpp"

namespace nessa::nn {

using tensor::Tensor;

/// One named parameter tensor plus its gradient accumulator.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `train` toggles train-time behaviour (dropout).
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Backward pass: consumes dL/d(output), returns dL/d(input), and
  /// accumulates parameter gradients (callers zero_grads() per step).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Parameter/gradient pairs (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Deep copy (used to snapshot the model for the FPGA-side quantized copy).
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Multiply-accumulate count for a single sample through this layer;
  /// feeds the analytic timing model.
  [[nodiscard]] virtual std::size_t flops_per_sample() const { return 0; }
};

}  // namespace nessa::nn
