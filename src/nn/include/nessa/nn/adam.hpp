// Adam optimizer (Kingma & Ba) with decoupled weight decay (AdamW-style).
// The paper trains with SGD+Nesterov; Adam is provided as the common
// alternative for downstream users and for optimizer ablations.
#pragma once

#include <vector>

#include "nessa/nn/layer.hpp"

namespace nessa::nn {

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;  ///< decoupled (applied to weights directly)
};

class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  /// One update from accumulated gradients. Moment buffers are keyed by
  /// parameter identity; reuse the same optimizer across steps.
  void step(std::vector<ParamRef> params);

  void set_learning_rate(float lr) noexcept { config_.learning_rate = lr; }
  [[nodiscard]] float learning_rate() const noexcept {
    return config_.learning_rate;
  }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }

 private:
  AdamConfig config_;
  std::size_t t_ = 0;
  struct Slot {
    const Tensor* key = nullptr;
    Tensor m;
    Tensor v;
  };
  std::vector<Slot> slots_;

  Slot& slot_for(const ParamRef& param);
};

}  // namespace nessa::nn
