#include "nessa/fault/epoch_schedule.hpp"

#include "nessa/fault/hashing.hpp"

namespace nessa::fault {
namespace {

/// Distinct stream offset so epoch draws never collide with the Injector's
/// per-request draws for the same spec index.
constexpr std::uint64_t kEpochStreamSalt = 0x45504f4348ULL;  // "EPOCH"

}  // namespace

bool EpochSchedule::fires(std::size_t index, std::size_t epoch) const {
  const FaultSpec& spec = plan_->faults[index];
  if (epoch < spec.start_epoch || epoch >= spec.end_epoch) return false;
  const double draw = u01(plan_->seed, kEpochStreamSalt + index,
                          static_cast<std::uint64_t>(epoch));
  return draw < spec.rate;
}

bool EpochSchedule::p2p_outage(std::size_t epoch) const {
  for (std::size_t i = 0; i < plan_->faults.size(); ++i) {
    const FaultSpec& spec = plan_->faults[i];
    if (spec.component != "p2p") continue;
    if (spec.kind != FaultKind::kTransientError &&
        spec.kind != FaultKind::kReject) {
      continue;
    }
    if (fires(i, epoch)) return true;
  }
  return false;
}

double EpochSchedule::scan_slowdown(std::size_t epoch) const {
  double factor = 1.0;
  for (std::size_t i = 0; i < plan_->faults.size(); ++i) {
    const FaultSpec& spec = plan_->faults[i];
    if (spec.component != "flash_bus" || spec.kind != FaultKind::kSlowdown) {
      continue;
    }
    if (fires(i, epoch)) factor *= spec.slowdown;
  }
  return factor;
}

util::SimTime EpochSchedule::selection_stall(std::size_t epoch) const {
  util::SimTime stall = 0;
  for (std::size_t i = 0; i < plan_->faults.size(); ++i) {
    const FaultSpec& spec = plan_->faults[i];
    if (spec.component != "fpga" || spec.kind != FaultKind::kStall) continue;
    if (fires(i, epoch)) stall += spec.stall_time;
  }
  return stall;
}

bool EpochSchedule::selection_timeout(
    std::size_t epoch, util::SimTime nominal_fpga_phase) const {
  if (plan_->selection_deadline_factor <= 0.0) return false;
  const util::SimTime stall = selection_stall(epoch);
  if (stall == 0) return false;
  const auto deadline = static_cast<util::SimTime>(
      static_cast<double>(nominal_fpga_phase) *
      plan_->selection_deadline_factor);
  return nominal_fpga_phase + stall > deadline;
}

}  // namespace nessa::fault
