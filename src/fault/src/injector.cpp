#include "nessa/fault/injector.hpp"

#include <cmath>

#include "nessa/fault/hashing.hpp"
#include "nessa/telemetry/telemetry.hpp"

namespace nessa::fault {
namespace {

constexpr const char* kFailureCounter = "fault.injected.failures";
constexpr const char* kSlowdownCounter = "fault.injected.slowdowns";
constexpr const char* kStallCounter = "fault.injected.stalls";
constexpr const char* kRejectCounter = "fault.injected.rejections";

}  // namespace

Injector::Injector(const FaultPlan& plan) : plan_(&plan) {
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    by_component_[plan.faults[i].component].push_back(
        CompiledSpec{&plan.faults[i], static_cast<std::uint64_t>(i), 0});
  }
}

bool Injector::targets(std::string_view component) const {
  return find_specs(component) != nullptr;
}

const std::vector<Injector::CompiledSpec>* Injector::find_specs(
    std::string_view name) const {
  auto it = by_component_.find(std::string(name));
  if (it == by_component_.end()) {
    const auto dot = name.rfind('.');
    if (dot == std::string_view::npos) return nullptr;
    it = by_component_.find(std::string(name.substr(dot + 1)));
    if (it == by_component_.end()) return nullptr;
  }
  return &it->second;
}

bool Injector::roll(CompiledSpec& compiled) {
  const double draw = u01(plan_->seed, compiled.index, compiled.counter);
  ++compiled.counter;
  return draw < compiled.spec->rate;
}

sim::FaultDecision Injector::on_submit(const sim::Component& component,
                                       sim::SimTime /*service*/,
                                       std::uint64_t /*bytes*/) {
  sim::FaultDecision decision;
  std::vector<CompiledSpec>* specs = find_specs(component.name());
  if (specs == nullptr) return decision;
  for (CompiledSpec& compiled : *specs) {
    if (compiled.spec->kind != FaultKind::kReject) continue;
    if (!roll(compiled)) continue;
    ++stats_.rejections;
    telemetry::count(kRejectCounter);
    decision.outcome = sim::FaultDecision::Outcome::kReject;
    // First hit wins; later specs do not see this submission (their
    // counters only advance for submissions that reach them).
    break;
  }
  return decision;
}

sim::FaultDecision Injector::on_service(const sim::Component& component,
                                        sim::SimTime service,
                                        std::uint64_t /*bytes*/) {
  sim::FaultDecision decision;
  std::vector<CompiledSpec>* specs = find_specs(component.name());
  if (specs == nullptr) return decision;
  for (CompiledSpec& compiled : *specs) {
    const FaultSpec& spec = *compiled.spec;
    switch (spec.kind) {
      case FaultKind::kReject:
        continue;  // submit-side only
      case FaultKind::kTransientError:
        if (roll(compiled)) {
          ++stats_.failures;
          telemetry::count(kFailureCounter);
          decision.outcome = sim::FaultDecision::Outcome::kFail;
        }
        break;
      case FaultKind::kSlowdown:
        if (roll(compiled)) {
          ++stats_.slowdowns;
          telemetry::count(kSlowdownCounter);
          decision.service_delta += static_cast<sim::SimTime>(std::llround(
              static_cast<double>(service) * (spec.slowdown - 1.0)));
        }
        break;
      case FaultKind::kStall:
        if (roll(compiled)) {
          ++stats_.stalls;
          telemetry::count(kStallCounter);
          decision.service_delta += spec.stall_time;
        }
        break;
    }
  }
  return decision;
}

}  // namespace nessa::fault
