#include "nessa/fault/fault_plan.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nessa::fault {
namespace {

[[nodiscard]] std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  out.append(s);
  out.push_back('\'');
  return out;
}

[[nodiscard]] std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += ", ";
    out += names[i];
  }
  return out;
}

/// "key=value" → {key, value}; throws when there is no '='.
std::pair<std::string, std::string> split_kv(const std::string& token,
                                             const std::string& where) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument(where + ": expected key=value, got " +
                                quoted(token));
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

double parse_double(const std::string& value, const std::string& where) {
  if (value.empty()) {
    throw std::invalid_argument(where + ": empty value");
  }
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument(where + ": number out of range: " +
                                quoted(value));
  } catch (const std::exception&) {
    throw std::invalid_argument(where + ": not a number: " + quoted(value));
  }
  if (used != value.size()) {
    throw std::invalid_argument(where + ": trailing garbage in " +
                                quoted(value));
  }
  if (!std::isfinite(parsed)) {
    throw std::invalid_argument(where + ": not a finite number: " +
                                quoted(value));
  }
  return parsed;
}

std::uint64_t parse_u64(const std::string& value, const std::string& where) {
  if (value.empty()) {
    throw std::invalid_argument(where + ": empty value");
  }
  // std::stoull silently wraps negative input; reject signs outright.
  if (value.front() == '-' || value.front() == '+') {
    throw std::invalid_argument(where + ": not a non-negative integer: " +
                                quoted(value));
  }
  std::size_t used = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(value, &used);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument(where + ": integer out of range: " +
                                quoted(value));
  } catch (const std::exception&) {
    throw std::invalid_argument(where + ": not a non-negative integer: " +
                                quoted(value));
  }
  if (used != value.size()) {
    throw std::invalid_argument(where + ": trailing garbage in " +
                                quoted(value));
  }
  return parsed;
}

util::SimTime us_to_sim(double us) {
  // Saturate instead of overflowing llround for huge (but finite) inputs.
  const double ps = us * static_cast<double>(util::kMicrosecond);
  constexpr auto kMax = std::numeric_limits<util::SimTime>::max();
  if (ps >= static_cast<double>(kMax)) return kMax;
  if (ps <= 0.0) return 0;
  return static_cast<util::SimTime>(std::llround(ps));
}

FaultSpec parse_fault_line(std::istringstream& fields,
                           const std::string& where) {
  FaultSpec spec;
  if (!(fields >> spec.component)) {
    throw std::invalid_argument(where + ": fault line missing component name");
  }
  std::string kind;
  if (!(fields >> kind)) {
    throw std::invalid_argument(where + ": fault line missing fault kind");
  }
  spec.kind = fault_kind_from_string(kind);
  std::string token;
  while (fields >> token) {
    const auto [key, value] = split_kv(token, where);
    if (key == "rate") {
      spec.rate = parse_double(value, where + " rate");
    } else if (key == "factor") {
      spec.slowdown = parse_double(value, where + " factor");
    } else if (key == "stall_us") {
      spec.stall_time = us_to_sim(parse_double(value, where + " stall_us"));
    } else if (key == "start") {
      spec.start_epoch =
          static_cast<std::size_t>(parse_u64(value, where + " start"));
    } else if (key == "end") {
      spec.end_epoch =
          static_cast<std::size_t>(parse_u64(value, where + " end"));
    } else {
      throw std::invalid_argument(where + ": unknown fault option " +
                                  quoted(key));
    }
  }
  return spec;
}

void parse_retry_line(std::istringstream& fields, RetryConfig& retry,
                      const std::string& where) {
  std::string token;
  while (fields >> token) {
    const auto [key, value] = split_kv(token, where);
    if (key == "max_attempts") {
      retry.max_attempts =
          static_cast<std::size_t>(parse_u64(value, where + " max_attempts"));
    } else if (key == "base_backoff_us") {
      retry.base_backoff =
          us_to_sim(parse_double(value, where + " base_backoff_us"));
    } else if (key == "multiplier") {
      retry.multiplier = parse_double(value, where + " multiplier");
    } else if (key == "max_backoff_us") {
      retry.max_backoff =
          us_to_sim(parse_double(value, where + " max_backoff_us"));
    } else if (key == "jitter") {
      retry.jitter = parse_double(value, where + " jitter");
    } else {
      throw std::invalid_argument(where + ": unknown retry option " +
                                  quoted(key));
    }
  }
}

/// "fail component=X at_us=T [mttr_us=D]" — component and at_us required.
FailureSpec parse_fail_line(std::istringstream& fields,
                            const std::string& where) {
  FailureSpec spec;
  bool have_at = false;
  std::string token;
  while (fields >> token) {
    const auto [key, value] = split_kv(token, where);
    if (key == "component") {
      spec.component = value;
    } else if (key == "at_us") {
      spec.at = us_to_sim(parse_double(value, where + " at_us"));
      have_at = true;
    } else if (key == "mttr_us") {
      spec.mttr = us_to_sim(parse_double(value, where + " mttr_us"));
    } else {
      throw std::invalid_argument(where + ": unknown fail option " +
                                  quoted(key));
    }
  }
  if (spec.component.empty()) {
    throw std::invalid_argument(where + ": fail needs component=NAME");
  }
  if (!have_at) {
    throw std::invalid_argument(where + ": fail needs at_us=T");
  }
  return spec;
}

/// "recover component=X at_us=T" — both required.
RecoverySpec parse_recover_line(std::istringstream& fields,
                                const std::string& where) {
  RecoverySpec spec;
  bool have_at = false;
  std::string token;
  while (fields >> token) {
    const auto [key, value] = split_kv(token, where);
    if (key == "component") {
      spec.component = value;
    } else if (key == "at_us") {
      spec.at = us_to_sim(parse_double(value, where + " at_us"));
      have_at = true;
    } else {
      throw std::invalid_argument(where + ": unknown recover option " +
                                  quoted(key));
    }
  }
  if (spec.component.empty()) {
    throw std::invalid_argument(where + ": recover needs component=NAME");
  }
  if (!have_at) {
    throw std::invalid_argument(where + ": recover needs at_us=T");
  }
  return spec;
}

/// "corrupt chunk=K" and/or "corrupt rate=R [sticky=0|1]".
CorruptionSpec parse_corrupt_line(std::istringstream& fields,
                                  const std::string& where) {
  CorruptionSpec spec;
  bool any = false;
  std::string token;
  while (fields >> token) {
    const auto [key, value] = split_kv(token, where);
    if (key == "chunk") {
      spec.chunk = parse_u64(value, where + " chunk");
    } else if (key == "rate") {
      spec.rate = parse_double(value, where + " rate");
    } else if (key == "sticky") {
      const std::uint64_t flag = parse_u64(value, where + " sticky");
      if (flag > 1) {
        throw std::invalid_argument(where + ": sticky must be 0 or 1, got " +
                                    quoted(value));
      }
      spec.sticky = flag != 0;
    } else {
      throw std::invalid_argument(where + ": unknown corrupt option " +
                                  quoted(key));
    }
    any = true;
  }
  if (!any) {
    throw std::invalid_argument(where +
                                ": corrupt needs chunk=K and/or rate=R");
  }
  return spec;
}

/// "crash epoch=N" / "crash sim_us=T" (at least one; both allowed).
void parse_crash_line(std::istringstream& fields, FaultPlan& plan,
                      const std::string& where) {
  std::string token;
  bool any = false;
  while (fields >> token) {
    const auto [key, value] = split_kv(token, where);
    if (key == "epoch") {
      plan.crash_epoch =
          static_cast<std::size_t>(parse_u64(value, where + " epoch"));
    } else if (key == "sim_us") {
      plan.crash_sim_time = us_to_sim(parse_double(value, where + " sim_us"));
      if (plan.crash_sim_time <= 0) {
        throw std::invalid_argument(where + ": sim_us must be > 0, got " +
                                    quoted(value));
      }
    } else {
      throw std::invalid_argument(where + ": unknown crash option " +
                                  quoted(key));
    }
    any = true;
  }
  if (!any) {
    throw std::invalid_argument(where +
                                ": crash needs epoch=N and/or sim_us=T");
  }
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTransientError:
      return "error";
    case FaultKind::kSlowdown:
      return "slow";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kReject:
      return "reject";
  }
  return "?";
}

FaultKind fault_kind_from_string(std::string_view token) {
  if (token == "error") return FaultKind::kTransientError;
  if (token == "slow" || token == "degrade") return FaultKind::kSlowdown;
  if (token == "stall") return FaultKind::kStall;
  if (token == "reject") return FaultKind::kReject;
  throw std::invalid_argument(
      "fault kind must be error|slow|stall|reject, got " +
      quoted(std::string(token)));
}

const std::vector<std::string>& known_component_names() {
  static const std::vector<std::string> kNames = {
      "flash_bus", "p2p", "host_link", "gpu_link", "host_bridge", "fpga",
      "gpu"};
  return kNames;
}

bool is_known_component(std::string_view name) {
  // Fleet graphs prefix component names per device ("ssd3.flash_bus");
  // a spec may target one device that way, so validate the suffix after
  // the last '.' against the canonical set.
  const auto dot = name.rfind('.');
  if (dot != std::string_view::npos) name = name.substr(dot + 1);
  for (const auto& known : known_component_names()) {
    if (known == name) return true;
  }
  return false;
}

namespace {

/// "ssd3" / "gpu1": a fleet node prefix naming a whole device.
[[nodiscard]] bool is_device_prefix(std::string_view name) {
  std::string_view digits;
  if (name.size() > 3 && name.substr(0, 3) == "ssd") {
    digits = name.substr(3);
  } else if (name.size() > 3 && name.substr(0, 3) == "gpu") {
    digits = name.substr(3);
  } else {
    return false;
  }
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

bool is_failure_target(std::string_view name) {
  const auto dot = name.find('.');
  if (dot != std::string_view::npos) {
    // "ssd3.flash_bus": a fleet-prefixed component name.
    return is_device_prefix(name.substr(0, dot)) &&
           is_known_component(name.substr(dot + 1));
  }
  return is_device_prefix(name) || is_known_component(name);
}

std::vector<std::string> FaultPlan::validate() const {
  std::vector<std::string> errors;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultSpec& spec = faults[i];
    const std::string field = "faults[" + std::to_string(i) + "]";
    if (!is_known_component(spec.component)) {
      errors.push_back(field + ".component: unknown component " +
                       quoted(spec.component) + " (expected one of " +
                       join_names(known_component_names()) + ")");
    }
    if (!(spec.rate > 0.0) || spec.rate > 1.0 || !std::isfinite(spec.rate)) {
      errors.push_back(field + ".rate: must be in (0, 1], got " +
                       std::to_string(spec.rate));
    }
    if (spec.kind == FaultKind::kSlowdown &&
        (!(spec.slowdown > 1.0) || !std::isfinite(spec.slowdown))) {
      errors.push_back(field + ".slowdown: slow fault needs factor > 1, got " +
                       std::to_string(spec.slowdown));
    }
    if (spec.kind == FaultKind::kStall && spec.stall_time <= 0) {
      errors.push_back(field + ".stall_time: stall fault needs stall_us > 0");
    }
    if (spec.end_epoch <= spec.start_epoch) {
      errors.push_back(field + ".end_epoch: empty window [" +
                       std::to_string(spec.start_epoch) + ", " +
                       std::to_string(spec.end_epoch) + ")");
    }
  }
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const FailureSpec& spec = failures[i];
    const std::string field = "failures[" + std::to_string(i) + "]";
    if (!is_failure_target(spec.component)) {
      errors.push_back(field + ".component: unknown failure target " +
                       quoted(spec.component) +
                       " (expected a component name, a prefixed component "
                       "like 'ssd0.flash_bus', or a device prefix like "
                       "'ssd0')");
    }
    if (spec.at <= 0) {
      errors.push_back(field + ".at: must be > 0 (at_us)");
    }
    if (spec.mttr < 0) {
      errors.push_back(field + ".mttr: must be >= 0 (0 = permanent)");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (failures[j].component == spec.component &&
          failures[j].at == spec.at) {
        errors.push_back(field + ": duplicate fail directive for " +
                         quoted(spec.component) + " at the same time");
        break;
      }
    }
  }
  for (std::size_t i = 0; i < recoveries.size(); ++i) {
    const RecoverySpec& spec = recoveries[i];
    const std::string field = "recoveries[" + std::to_string(i) + "]";
    if (!is_failure_target(spec.component)) {
      errors.push_back(field + ".component: unknown failure target " +
                       quoted(spec.component));
    }
    if (spec.at <= 0) {
      errors.push_back(field + ".at: must be > 0 (at_us)");
    }
  }
  for (std::size_t i = 0; i < corruptions.size(); ++i) {
    const CorruptionSpec& spec = corruptions[i];
    const std::string field = "corruptions[" + std::to_string(i) + "]";
    if (!(spec.rate > 0.0) || spec.rate > 1.0 || !std::isfinite(spec.rate)) {
      errors.push_back(field + ".rate: must be in (0, 1], got " +
                       std::to_string(spec.rate));
    }
  }
  if (retry.max_attempts == 0) {
    errors.emplace_back(
        "retry.max_attempts: must be >= 1 (the first attempt counts)");
  }
  if (retry.base_backoff < 0) {
    errors.emplace_back("retry.base_backoff: must be >= 0");
  }
  if (retry.max_backoff < retry.base_backoff) {
    errors.emplace_back("retry.max_backoff: must be >= retry.base_backoff");
  }
  if (!(retry.multiplier >= 1.0) || !std::isfinite(retry.multiplier)) {
    errors.emplace_back("retry.multiplier: must be >= 1, got " +
                        std::to_string(retry.multiplier));
  }
  if (retry.jitter < 0.0 || retry.jitter >= 1.0 ||
      !std::isfinite(retry.jitter)) {
    errors.emplace_back("retry.jitter: must be in [0, 1), got " +
                        std::to_string(retry.jitter));
  }
  if (selection_deadline_factor < 0.0 ||
      !std::isfinite(selection_deadline_factor)) {
    errors.emplace_back(
        "selection_deadline_factor: must be >= 0 (0 disables), got " +
        std::to_string(selection_deadline_factor));
  }
  if (crash_sim_time < 0) {
    errors.emplace_back("crash_sim_time: must be >= 0 (0 disables)");
  }
  return errors;
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  out << "seed " << seed << ", ";
  if (faults.empty()) {
    out << "no faults";
  } else {
    out << faults.size() << (faults.size() == 1 ? " fault (" : " faults (");
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (i != 0) out << "; ";
      out << faults[i].component << ' ' << to_string(faults[i].kind) << " @"
          << faults[i].rate;
    }
    out << ")";
  }
  if (!failures.empty()) {
    out << ", " << failures.size()
        << (failures.size() == 1 ? " failure (" : " failures (");
    for (std::size_t i = 0; i < failures.size(); ++i) {
      if (i != 0) out << "; ";
      out << failures[i].component << " @"
          << util::to_us(failures[i].at) << " us";
      if (failures[i].mttr > 0) {
        out << " mttr " << util::to_us(failures[i].mttr) << " us";
      }
    }
    out << ")";
  }
  if (!recoveries.empty()) {
    out << ", " << recoveries.size()
        << (recoveries.size() == 1 ? " recovery" : " recoveries");
  }
  if (!corruptions.empty()) {
    out << ", corruption (";
    for (std::size_t i = 0; i < corruptions.size(); ++i) {
      if (i != 0) out << "; ";
      if (corruptions[i].chunk != CorruptionSpec::kAllChunks) {
        out << "chunk " << corruptions[i].chunk;
      } else {
        out << "rate " << corruptions[i].rate;
      }
      if (!corruptions[i].sticky) out << " transient";
    }
    out << ")";
  }
  out << ", retry x" << retry.max_attempts;
  if (selection_deadline_factor > 0.0) {
    out << ", selection deadline x" << selection_deadline_factor;
  }
  if (crash_epoch != FaultSpec::kNoEpochLimit) {
    out << ", crash @epoch " << crash_epoch;
  }
  if (crash_sim_time > 0) {
    out << ", crash @" << util::to_us(crash_sim_time) << " us";
  }
  return out.str();
}

const std::vector<std::string>& FaultPlan::preset_names() {
  static const std::vector<std::string> kNames = {"flaky-p2p", "slow-nand",
                                                  "fpga-stall"};
  return kNames;
}

bool FaultPlan::is_preset(std::string_view name) {
  for (const auto& known : preset_names()) {
    if (known == name) return true;
  }
  return false;
}

FaultPlan FaultPlan::preset(std::string_view name) {
  FaultPlan plan;
  if (name == "flaky-p2p") {
    // Transient P2P drops frequent enough that some batch exhausts its
    // retry budget within the first epochs, triggering the host-path
    // fallback policy.
    plan.faults.push_back(
        {"p2p", FaultKind::kTransientError, 0.35, 1.0, 0, 0,
         FaultSpec::kNoEpochLimit});
    plan.retry.max_attempts = 3;
    return plan;
  }
  if (name == "slow-nand") {
    // Degraded flash: a third of reads land on slow pages (6x service
    // time), a few fail outright and get retried.
    plan.faults.push_back(
        {"flash_bus", FaultKind::kSlowdown, 0.30, 6.0, 0, 0,
         FaultSpec::kNoEpochLimit});
    plan.faults.push_back(
        {"flash_bus", FaultKind::kTransientError, 0.05, 1.0, 0, 0,
         FaultSpec::kNoEpochLimit});
    return plan;
  }
  if (name == "fpga-stall") {
    // Compute stalls on the selection engine plus a selection deadline:
    // epochs whose selection misses the deadline train on the previous
    // subset instead of stalling the GPU.
    plan.faults.push_back(
        {"fpga", FaultKind::kStall, 0.20, 1.0, 50 * util::kMillisecond, 0,
         FaultSpec::kNoEpochLimit});
    plan.selection_deadline_factor = 1.25;
    return plan;
  }
  throw std::invalid_argument("unknown fault preset " +
                              quoted(std::string(name)) + " (known: " +
                              join_names(preset_names()) + ")");
}

FaultPlan FaultPlan::from_stream(std::istream& in, const std::string& origin) {
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only line
    const std::string where = origin + ":" + std::to_string(line_no);
    if (directive == "seed") {
      std::string value;
      if (!(fields >> value)) {
        throw std::invalid_argument(where + ": seed needs a value");
      }
      plan.seed = parse_u64(value, where + " seed");
    } else if (directive == "selection_deadline_factor") {
      std::string value;
      if (!(fields >> value)) {
        throw std::invalid_argument(
            where + ": selection_deadline_factor needs a value");
      }
      plan.selection_deadline_factor =
          parse_double(value, where + " selection_deadline_factor");
    } else if (directive == "retry") {
      parse_retry_line(fields, plan.retry, where);
    } else if (directive == "fault") {
      plan.faults.push_back(parse_fault_line(fields, where));
    } else if (directive == "fail") {
      FailureSpec spec = parse_fail_line(fields, where);
      for (const FailureSpec& prior : plan.failures) {
        if (prior.component == spec.component && prior.at == spec.at) {
          throw std::invalid_argument(
              where + ": duplicate fail directive for " +
              quoted(spec.component) + " at the same at_us");
        }
      }
      plan.failures.push_back(std::move(spec));
    } else if (directive == "recover") {
      plan.recoveries.push_back(parse_recover_line(fields, where));
    } else if (directive == "corrupt") {
      plan.corruptions.push_back(parse_corrupt_line(fields, where));
    } else if (directive == "crash") {
      parse_crash_line(fields, plan, where);
    } else {
      throw std::invalid_argument(where + ": unknown directive " +
                                  quoted(directive) +
                                  " (expected seed, retry, "
                                  "selection_deadline_factor, crash, fail, "
                                  "recover, corrupt, or fault)");
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("FaultPlan: cannot open " + quoted(path));
  }
  return from_stream(in, path);
}

FaultPlan FaultPlan::parse(const std::string& name_or_path) {
  if (is_preset(name_or_path)) return preset(name_or_path);
  return from_file(name_or_path);
}

}  // namespace nessa::fault
