#include "nessa/fault/crash.hpp"

#include <string>

#include "nessa/fault/fault_plan.hpp"
#include "nessa/telemetry/telemetry.hpp"

namespace nessa::fault {

namespace {

std::string describe(std::size_t epoch, util::SimTime sim_time) {
  return "injected crash at epoch " + std::to_string(epoch) + " (sim time " +
         std::to_string(util::to_us(sim_time)) + " us)";
}

}  // namespace

InjectedCrash::InjectedCrash(std::size_t epoch, util::SimTime sim_time)
    : std::runtime_error(describe(epoch, sim_time)),
      epoch_(epoch),
      sim_time_(sim_time) {}

void maybe_crash(const FaultPlan& plan, std::size_t epoch,
                 util::SimTime sim_elapsed) {
  if (!plan.has_crash_point()) return;
  const bool epoch_hit = epoch >= plan.crash_epoch;
  const bool time_hit =
      plan.crash_sim_time > 0 && sim_elapsed >= plan.crash_sim_time;
  if (!epoch_hit && !time_hit) return;
  telemetry::count("fault.injected.crashes");
  throw InjectedCrash(epoch, sim_elapsed);
}

}  // namespace nessa::fault
