#include "nessa/fault/retry_policy.hpp"

#include <algorithm>
#include <cmath>

#include "nessa/fault/hashing.hpp"
#include "nessa/telemetry/telemetry.hpp"

namespace nessa::fault {

util::SimTime RetryPolicy::backoff(std::size_t attempt,
                                   std::uint64_t request_id) const noexcept {
  if (attempt == 0) attempt = 1;
  // Clamp the exponent before multiplying: a huge attempt count would make
  // pow() overflow to inf, and base_backoff == 0 would then produce
  // 0 * inf = NaN — which min() propagates and llround() mangles. Any
  // exponent at which base * mult^e already exceeds max_backoff yields the
  // same clamped delay, so cap the exponent at the point of saturation.
  double exponent = static_cast<double>(attempt - 1);
  if (config_.multiplier > 1.0 && config_.base_backoff > 0) {
    const double saturating =
        std::log(static_cast<double>(config_.max_backoff) /
                 static_cast<double>(config_.base_backoff)) /
        std::log(config_.multiplier);
    exponent = std::min(exponent, std::max(0.0, saturating) + 1.0);
  } else if (config_.multiplier > 1.0) {
    exponent = 0.0;  // base of 0 stays 0 at any exponent
  }
  double delay = static_cast<double>(config_.base_backoff) *
                 std::pow(config_.multiplier, exponent);
  delay = std::min(delay, static_cast<double>(config_.max_backoff));
  if (config_.jitter > 0.0) {
    // Deterministic jitter factor in [1 - j, 1 + j).
    const double draw =
        u01(seed_, request_id, static_cast<std::uint64_t>(attempt));
    delay *= 1.0 + config_.jitter * (2.0 * draw - 1.0);
  }
  return std::max<util::SimTime>(
      0, static_cast<util::SimTime>(std::llround(delay)));
}

void RetryPolicy::note_retry(util::SimTime backoff_time) {
  ++stats_.retries;
  telemetry::count("fault.retries");
  if (auto* h = telemetry::histogram_ptr("fault.backoff_us")) {
    h->record(static_cast<double>(backoff_time) /
              static_cast<double>(util::kMicrosecond));
  }
}

void RetryPolicy::note_giveup() {
  ++stats_.giveups;
  telemetry::count("fault.giveups");
}

}  // namespace nessa::fault
