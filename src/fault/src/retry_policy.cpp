#include "nessa/fault/retry_policy.hpp"

#include <algorithm>
#include <cmath>

#include "nessa/fault/hashing.hpp"
#include "nessa/telemetry/telemetry.hpp"

namespace nessa::fault {

util::SimTime RetryPolicy::backoff(std::size_t attempt,
                                   std::uint64_t request_id) const noexcept {
  if (attempt == 0) attempt = 1;
  double delay = static_cast<double>(config_.base_backoff) *
                 std::pow(config_.multiplier,
                          static_cast<double>(attempt - 1));
  delay = std::min(delay, static_cast<double>(config_.max_backoff));
  if (config_.jitter > 0.0) {
    // Deterministic jitter factor in [1 - j, 1 + j).
    const double draw =
        u01(seed_, request_id, static_cast<std::uint64_t>(attempt));
    delay *= 1.0 + config_.jitter * (2.0 * draw - 1.0);
  }
  return std::max<util::SimTime>(
      0, static_cast<util::SimTime>(std::llround(delay)));
}

void RetryPolicy::note_retry(util::SimTime backoff_time) {
  ++stats_.retries;
  telemetry::count("fault.retries");
  if (auto* h = telemetry::histogram_ptr("fault.backoff_us")) {
    h->record(static_cast<double>(backoff_time) /
              static_cast<double>(util::kMicrosecond));
  }
}

void RetryPolicy::note_giveup() {
  ++stats_.giveups;
  telemetry::count("fault.giveups");
}

}  // namespace nessa::fault
