// Injector: replays a FaultPlan against live sim::Component traffic.
//
// One Injector is installed (via Component::set_fault_hook) on every
// component of a DeviceGraph. At each submit / service-start event it looks
// up the specs targeting that component and decides — by stateless hash of
// (plan seed, spec index, per-spec event counter) — whether the fault
// bites. Decisions are therefore bit-identical across runs for the same
// plan, independent of wall time or host RNG state.
//
// Effects map onto the sim::FaultDecision vocabulary:
//   error  → Outcome::kFail (request consumes service time, then fails)
//   slow   → service_delta = service * (factor - 1)
//   stall  → service_delta = stall_time
//   reject → Outcome::kReject at submit
//
// Every injected event is tallied in InjectorStats, counted on
// fault.injected.<kind> telemetry counters, and (for service-side faults)
// visible in the trace as the lengthened/failed component span.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nessa/fault/fault_plan.hpp"
#include "nessa/sim/component.hpp"

namespace nessa::fault {

struct InjectorStats {
  std::uint64_t failures = 0;    ///< requests marked kFail
  std::uint64_t slowdowns = 0;   ///< requests served with multiplied service
  std::uint64_t stalls = 0;      ///< requests hit by a fixed stall
  std::uint64_t rejections = 0;  ///< submissions bounced

  [[nodiscard]] std::uint64_t total() const noexcept {
    return failures + slowdowns + stalls + rejections;
  }
};

class Injector final : public sim::FaultHook {
 public:
  /// The plan must outlive the Injector. The plan is compiled into a
  /// per-component spec index once, so per-event dispatch is a hash lookup.
  explicit Injector(const FaultPlan& plan);

  sim::FaultDecision on_submit(const sim::Component& component,
                               sim::SimTime service,
                               std::uint64_t bytes) override;
  sim::FaultDecision on_service(const sim::Component& component,
                                sim::SimTime service,
                                std::uint64_t bytes) override;

  [[nodiscard]] const InjectorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }

  /// True when at least one spec targets `component` — lets callers skip
  /// installing the hook on components the plan never touches. Matching is
  /// prefix-aware (see find_specs).
  [[nodiscard]] bool targets(std::string_view component) const;

 private:
  struct CompiledSpec {
    const FaultSpec* spec;
    std::uint64_t index;    ///< position in plan.faults = hash stream id
    std::uint64_t counter;  ///< events seen by this spec so far
  };

  /// True when spec #index fires for its next event (advances the counter).
  bool roll(CompiledSpec& compiled);

  /// Specs targeting `name`, or nullptr. Exact match wins; otherwise fleet
  /// device prefixes are stripped — a graph built with a name prefix calls
  /// its components "ssd3.flash_bus", and a canonical plan target
  /// ("flash_bus") matches the suffix after the last '.'. An exact entry
  /// for the prefixed name therefore overrides the canonical one, which is
  /// how per-device plans coexist with fleet-wide ones.
  [[nodiscard]] const std::vector<CompiledSpec>* find_specs(
      std::string_view name) const;
  [[nodiscard]] std::vector<CompiledSpec>* find_specs(std::string_view name) {
    return const_cast<std::vector<CompiledSpec>*>(
        std::as_const(*this).find_specs(name));
  }

  const FaultPlan* plan_;
  /// component name → specs targeting it (submit-side and service-side
  /// kept together; kind discriminates at the call site).
  std::unordered_map<std::string, std::vector<CompiledSpec>> by_component_;
  InjectorStats stats_;
};

}  // namespace nessa::fault
