// Stateless deterministic hashing shared by the fault subsystem.
//
// Every fault decision — does this request fail, how much jitter does this
// backoff get, does the outage bite this epoch — is a pure function of
// (plan seed, stream id, event counter) pushed through splitmix64. No
// generator state is threaded through the pipeline, so decisions are
// independent of evaluation order and bit-identical across runs, thread
// counts, and sanitizer builds.
#pragma once

#include <cstdint>

#include "nessa/util/rng.hpp"

namespace nessa::fault {

/// Mix three words into one well-distributed 64-bit hash.
[[nodiscard]] constexpr std::uint64_t mix(std::uint64_t seed,
                                          std::uint64_t stream,
                                          std::uint64_t counter) noexcept {
  std::uint64_t state = seed;
  util::splitmix64(state);
  state ^= stream * 0x9e3779b97f4a7c15ULL;
  util::splitmix64(state);
  state ^= counter * 0xd1b54a32d192ed03ULL;
  return util::splitmix64(state);
}

/// Uniform double in [0, 1) derived from mix().
[[nodiscard]] constexpr double u01(std::uint64_t seed, std::uint64_t stream,
                                   std::uint64_t counter) noexcept {
  return static_cast<double>(mix(seed, stream, counter) >> 11) * 0x1.0p-53;
}

}  // namespace nessa::fault
