// FaultReport: what actually happened during a faulted run.
//
// Filled in by the pipeline simulation (and mirrored into telemetry as
// fault.* counters); carried on PipelineTrace so tests and tools can assert
// on degraded-mode behavior without a telemetry session.
#pragma once

#include <cstdint>

namespace nessa::fault {

struct FaultReport {
  // Injection-side tallies (from fault::Injector).
  std::uint64_t injected_failures = 0;   ///< requests failed (error faults)
  std::uint64_t injected_slowdowns = 0;  ///< requests served slow
  std::uint64_t injected_stalls = 0;     ///< requests hit by a stall
  std::uint64_t injected_rejections = 0; ///< submissions bounced

  // Policy-side tallies (from retries and degradation decisions).
  std::uint64_t retries = 0;         ///< re-submissions after a failure
  std::uint64_t giveups = 0;         ///< requests dead after the retry budget
  std::uint64_t dropped_batches = 0; ///< batches abandoned after give-up
  std::uint64_t stale_epochs = 0;    ///< epochs trained on a carried subset
  bool host_fallback = false;        ///< P2P path abandoned for host path
  std::uint64_t host_fallback_epoch = 0;  ///< epoch the fallback fired in

  [[nodiscard]] std::uint64_t injected_total() const noexcept {
    return injected_failures + injected_slowdowns + injected_stalls +
           injected_rejections;
  }
  [[nodiscard]] bool any() const noexcept {
    return injected_total() != 0 || retries != 0 || giveups != 0 ||
           dropped_batches != 0 || stale_epochs != 0 || host_fallback;
  }
};

}  // namespace nessa::fault
