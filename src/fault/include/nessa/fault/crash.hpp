// Kill-point injection: the process-death analogue of the request-level
// faults. A FaultPlan may carry one crash point ("crash epoch=N" /
// "crash sim_us=T" in the plan format); every run driver and the pipeline
// simulation check it at epoch boundaries and raise InjectedCrash when it is
// reached — modelling the process dying with whatever checkpoints were
// already on disk. The killpoint tests catch the exception, resume from the
// checkpoint directory, and assert the resumed run is bit-identical to an
// uninterrupted one.
//
// A crash point is NOT cleared by resuming: a resumed run that reaches the
// same point crashes again. To run past it, resume with a plan whose crash
// point is removed (the CLI's --resume does this automatically).
#pragma once

#include <cstddef>
#include <stdexcept>

#include "nessa/util/units.hpp"

namespace nessa::fault {

struct FaultPlan;

/// Thrown at the epoch boundary where a plan's crash point fires.
class InjectedCrash : public std::runtime_error {
 public:
  InjectedCrash(std::size_t epoch, util::SimTime sim_time);

  /// The epoch the run was about to start when it died.
  [[nodiscard]] std::size_t epoch() const noexcept { return epoch_; }
  /// Simulated time accumulated when the crash fired.
  [[nodiscard]] util::SimTime sim_time() const noexcept { return sim_time_; }

 private:
  std::size_t epoch_;
  util::SimTime sim_time_;
};

/// Raise InjectedCrash if the plan's kill point has been reached: the run is
/// about to start `epoch`, having accumulated `sim_elapsed` of simulated
/// time. No-op for plans without a crash point.
void maybe_crash(const FaultPlan& plan, std::size_t epoch,
                 util::SimTime sim_elapsed);

}  // namespace nessa::fault
