// FaultPlan: a deterministic, seed-driven schedule of device faults.
//
// A plan is a list of FaultSpec entries, each naming one DeviceGraph
// component (flash_bus, p2p, host_link, gpu_link, host_bridge, fpga, gpu)
// and one fault kind:
//
//   error   the request consumes its service time, then fails (NAND read
//           error, dropped P2P transfer) — the producer's retry policy
//           decides what happens next;
//   slow    the service time is multiplied (slow pages, link bandwidth
//           degradation);
//   stall   a fixed dead time is added to the request (FPGA compute stall);
//   reject  the submission is bounced at post time (host bridge shedding
//           load), exactly like a full bounded queue.
//
// Whether a given request is hit is decided by a stateless splitmix64 hash
// of (plan seed, spec index, per-spec event counter), so the same plan +
// seed produces bit-identical fault schedules on every run — chaos
// scenarios are reproducible experiments, not flaky ones.
//
// Two consumers read the plan at different granularities:
//  - fault::Injector replays it request by request inside the discrete-
//    event pipeline simulation (sim::FaultHook seam);
//  - fault::EpochSchedule replays it epoch by epoch for the analytic
//    trainers, where `rate` is the per-epoch probability that the fault
//    bites that epoch (the [start_epoch, end_epoch) window applies here).
//
// Plans come from presets (flaky-p2p, slow-nand, fpga-stall), from a small
// line-oriented text format (see from_stream), or are built in code.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "nessa/util/units.hpp"

namespace nessa::fault {

enum class FaultKind : std::uint8_t {
  kTransientError,  ///< request fails after consuming its service time
  kSlowdown,        ///< service time multiplied by `slowdown`
  kStall,           ///< `stall_time` of dead time added to the request
  kReject,          ///< submission bounced at post time
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;
/// Parses "error" / "slow" (alias "degrade") / "stall" / "reject".
/// Throws std::invalid_argument otherwise.
[[nodiscard]] FaultKind fault_kind_from_string(std::string_view token);

/// One fault source on one DeviceGraph component.
struct FaultSpec {
  std::string component;  ///< flash_bus | p2p | host_link | gpu_link |
                          ///< host_bridge | fpga | gpu
  FaultKind kind = FaultKind::kTransientError;
  /// Hit probability: per request in the event-driven pipeline, per epoch
  /// in the trainers. Must be in (0, 1].
  double rate = 0.0;
  double slowdown = 1.0;          ///< kSlowdown service-time multiplier (> 1)
  util::SimTime stall_time = 0;   ///< kStall added dead time (> 0)
  /// Trainer-granularity active window [start_epoch, end_epoch). The
  /// request-level Injector treats every spec as always active (requests
  /// from adjacent epochs interleave in the pipelined schedule).
  std::size_t start_epoch = 0;
  std::size_t end_epoch = kNoEpochLimit;

  static constexpr std::size_t kNoEpochLimit = ~std::size_t{0};
};

/// Whole-device (or single-component) outage: the target goes down at
/// `at`, its in-flight request fails deterministically and queued work is
/// drained through the failure-continuation path. `mttr == 0` means the
/// outage is permanent; otherwise the component recovers `mttr` after it
/// fell. Targets may be a canonical component name, a fleet-prefixed name
/// ("ssd3.flash_bus"), or a bare device prefix ("ssd3") meaning the whole
/// DeviceGraph.
struct FailureSpec {
  std::string component;
  util::SimTime at = 0;
  util::SimTime mttr = 0;  ///< 0 = permanent; else down for exactly this long
};

/// Explicit recovery point for a component/device downed by a FailureSpec
/// with mttr == 0 (or to shorten/extend an outage by hand).
struct RecoverySpec {
  std::string component;
  util::SimTime at = 0;
};

/// Silent-data-corruption source for the chunked data path: a fetch of a
/// matching chunk returns flipped bits. `chunk == kAllChunks` corrupts by
/// rate (deterministic per-chunk hash); a specific chunk index corrupts
/// that chunk alone. `sticky` corruption survives re-fetches (media damage,
/// drives the quarantine path); non-sticky corruption clears on the first
/// re-fetch (transient transfer error).
struct CorruptionSpec {
  static constexpr std::uint64_t kAllChunks = ~std::uint64_t{0};
  std::uint64_t chunk = kAllChunks;
  double rate = 1.0;
  bool sticky = true;
};

/// Bounded-retry knobs applied by DeviceGraph::post_with_retry.
struct RetryConfig {
  std::size_t max_attempts = 4;   ///< total attempts, including the first
  util::SimTime base_backoff = 50 * util::kMicrosecond;
  double multiplier = 2.0;        ///< exponential backoff growth
  util::SimTime max_backoff = 10 * util::kMillisecond;
  double jitter = 0.25;           ///< +- fraction, deterministically hashed
};

struct FaultPlan {
  std::uint64_t seed = 42;        ///< drives every fault decision
  std::vector<FaultSpec> faults;  ///< empty = no faults (plan disabled)
  /// Scheduled device/component outages ("fail component=… at_us=…").
  std::vector<FailureSpec> failures;
  /// Explicit recovery points ("recover component=… at_us=…").
  std::vector<RecoverySpec> recoveries;
  /// Chunk corruption sources ("corrupt chunk=… | rate=…").
  std::vector<CorruptionSpec> corruptions;
  RetryConfig retry{};
  /// Selection deadline as a multiple of the nominal (fault-free) FPGA
  /// phase. When > 0 and selection for an epoch has not landed by the
  /// deadline, the pipeline carries the previous epoch's subset forward
  /// (telemetry-visible staleness) instead of stalling the GPU. 0 disables
  /// the deadline.
  double selection_deadline_factor = 0.0;
  /// Kill point ("crash epoch=N" / "crash sim_us=T" in the plan format):
  /// the run raises fault::InjectedCrash at the first epoch boundary where
  /// the epoch about to start is >= crash_epoch, or the accumulated
  /// simulated time is >= crash_sim_time (> 0 to enable). Models process
  /// death for the checkpoint/restore killpoint tests; see fault/crash.hpp.
  std::size_t crash_epoch = FaultSpec::kNoEpochLimit;
  util::SimTime crash_sim_time = 0;

  [[nodiscard]] bool enabled() const noexcept { return !faults.empty(); }

  /// True when the plan schedules at least one device/component outage.
  [[nodiscard]] bool has_failures() const noexcept {
    return !failures.empty();
  }

  /// True when the plan injects chunk corruption.
  [[nodiscard]] bool has_corruption() const noexcept {
    return !corruptions.empty();
  }

  [[nodiscard]] bool has_crash_point() const noexcept {
    return crash_epoch != FaultSpec::kNoEpochLimit || crash_sim_time > 0;
  }

  /// Copy of the plan with the kill point removed — what a resumed run
  /// should execute under so it does not re-crash at the same boundary.
  [[nodiscard]] FaultPlan without_crash_point() const {
    FaultPlan plan = *this;
    plan.crash_epoch = FaultSpec::kNoEpochLimit;
    plan.crash_sim_time = 0;
    return plan;
  }

  /// Check every field and return ALL problems found, one human-readable
  /// message each ("field: why") — same all-errors contract as
  /// core::RunConfig::validate().
  [[nodiscard]] std::vector<std::string> validate() const;

  /// One-line description for CLI echo, e.g.
  /// "seed 42, 1 fault (p2p error @0.35), retry x3".
  [[nodiscard]] std::string summary() const;

  /// Built-in scenario names: flaky-p2p, slow-nand, fpga-stall.
  static const std::vector<std::string>& preset_names();
  [[nodiscard]] static bool is_preset(std::string_view name);
  /// Throws std::invalid_argument for unknown names.
  static FaultPlan preset(std::string_view name);

  /// Parse the line-oriented plan format ('#' comments, blank lines ok):
  ///
  ///   seed 7
  ///   retry max_attempts=3 base_backoff_us=50 multiplier=2
  ///         max_backoff_us=5000 jitter=0.25
  ///   selection_deadline_factor 1.25
  ///   fault p2p error rate=0.35
  ///   fault flash_bus slow rate=0.3 factor=6 start=2 end=8
  ///   fault fpga stall rate=0.2 stall_us=50000
  ///   fail component=ssd0 at_us=40000 mttr_us=25000
  ///   recover component=ssd1 at_us=90000
  ///   corrupt chunk=3
  ///   corrupt rate=0.01 sticky=0
  ///
  /// Throws std::invalid_argument on malformed input (the message names
  /// the offending line).
  static FaultPlan from_stream(std::istream& in,
                               const std::string& origin = "<stream>");
  /// Throws std::runtime_error when the file cannot be opened.
  static FaultPlan from_file(const std::string& path);
  /// Preset name or path to a plan file (presets win on collision).
  static FaultPlan parse(const std::string& name_or_path);
};

/// Component names a FaultSpec may target (the DeviceGraph topology).
[[nodiscard]] const std::vector<std::string>& known_component_names();
[[nodiscard]] bool is_known_component(std::string_view name);

/// True for names a FailureSpec/RecoverySpec may target: a canonical
/// component name, a fleet-prefixed component name ("ssd3.flash_bus"), or
/// a bare device prefix ("ssd3" / "gpu1" — the whole graph/node).
[[nodiscard]] bool is_failure_target(std::string_view name);

}  // namespace nessa::fault
