// EpochSchedule: the trainer-granularity view of a FaultPlan.
//
// The analytic trainers (NessaTrainer and friends) do not push individual
// requests through the event engine — they price whole epochs. For them a
// FaultPlan is replayed per epoch: each spec's `rate` becomes the
// probability that the fault bites a given epoch, decided by the same
// stateless (seed, spec index, epoch) hash the Injector uses per request,
// and the spec's [start_epoch, end_epoch) window is honored.
//
// The queries mirror the degraded-mode policies:
//   p2p_outage(e)        p2p error/reject fault bites → the epoch's scan is
//                        re-priced over the host-mediated path;
//   scan_slowdown(e)     combined flash_bus slowdown factor for the epoch;
//   selection_stall(e)   total FPGA stall time added to the epoch;
//   selection_timeout(e) the stalled selection also missed the deadline
//                        (plan.selection_deadline_factor > 0) → the trainer
//                        carries the previous subset forward (stale epoch).
#pragma once

#include <cstddef>

#include "nessa/fault/fault_plan.hpp"

namespace nessa::fault {

class EpochSchedule {
 public:
  /// The plan must outlive the schedule.
  explicit EpochSchedule(const FaultPlan& plan) noexcept : plan_(&plan) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }

  /// Persistent P2P trouble this epoch (error or reject fault on "p2p").
  [[nodiscard]] bool p2p_outage(std::size_t epoch) const;

  /// Combined service-time multiplier for the flash scan this epoch
  /// (product of active flash_bus slowdown factors; 1.0 = nominal).
  [[nodiscard]] double scan_slowdown(std::size_t epoch) const;

  /// Total stall time added to the FPGA selection phase this epoch.
  [[nodiscard]] util::SimTime selection_stall(std::size_t epoch) const;

  /// True when a selection deadline is configured and this epoch's stalled
  /// selection misses it — the trainer should reuse the previous subset.
  [[nodiscard]] bool selection_timeout(std::size_t epoch,
                                       util::SimTime nominal_fpga_phase) const;

 private:
  /// Does spec #index fire in `epoch`? (window + hashed per-epoch draw)
  [[nodiscard]] bool fires(std::size_t index, std::size_t epoch) const;

  const FaultPlan* plan_;
};

}  // namespace nessa::fault
