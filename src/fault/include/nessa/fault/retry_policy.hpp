// RetryPolicy: bounded retries with deterministic exponential backoff.
//
// Applied by DeviceGraph::post_with_retry when an installed fault plan
// fails a request: the request is re-posted after
//
//   backoff(attempt) = clamp(base * multiplier^(attempt-1), max) * jitter
//
// where jitter is a deterministic factor in [1 - j, 1 + j) hashed from
// (plan seed, request id, attempt) — no RNG state, so retry timing is
// bit-identical across runs. Once `max_attempts` total attempts are spent
// the policy gives up and the caller's failure continuation decides what
// degrades (drop the batch, fall back to the host path, ...).
//
// Telemetry: every retry bumps fault.retries and records the backoff in
// the fault.backoff_us histogram; every exhausted budget bumps
// fault.giveups.
#pragma once

#include <cstdint>

#include "nessa/fault/fault_plan.hpp"

namespace nessa::fault {

struct RetryStats {
  std::uint64_t retries = 0;  ///< re-submissions scheduled
  std::uint64_t giveups = 0;  ///< budgets exhausted
};

class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryConfig& config,
                       std::uint64_t seed = 42) noexcept
      : config_(config), seed_(seed) {}

  [[nodiscard]] const RetryConfig& config() const noexcept { return config_; }

  /// True when `attempts` completed attempts have exhausted the budget.
  [[nodiscard]] bool exhausted(std::size_t attempts) const noexcept {
    return attempts >= config_.max_attempts;
  }

  /// Backoff before attempt `attempt + 1`, given `attempt` failures so far
  /// (attempt >= 1). `request_id` individualizes the jitter stream so
  /// concurrent retries do not thundering-herd onto the same instant.
  [[nodiscard]] util::SimTime backoff(std::size_t attempt,
                                      std::uint64_t request_id) const noexcept;

  /// Account a scheduled retry / an exhausted budget (stats + telemetry).
  void note_retry(util::SimTime backoff_time);
  void note_giveup();

  [[nodiscard]] const RetryStats& stats() const noexcept { return stats_; }

 private:
  RetryConfig config_;
  std::uint64_t seed_;
  RetryStats stats_;
};

}  // namespace nessa::fault
