// trace-dump — exercise the instrumented NeSSA stack end to end and export
// the telemetry artifacts:
//
//   trace-dump [--trace PATH] [--metrics PATH] [--pipeline-epochs N]
//              [--train-epochs N] [--scale S] [--seed N]
//              [--fault-plan PRESET|FILE] [--fleet-jobs N]
//              [--scenario PRESET]
//
// Runs (1) the batch-granular SmartSSD pipeline simulation, which emits
// sim-clock spans for every modeled resource (flash-read, fpga-forward,
// selection, host-link, gpu-link, gpu-train, feedback — plus chunk-fetch
// when --scenario switches the flash plan to chunked streaming), (2) a
// short substrate NeSSA training run, which emits wall-clock spans from
// the selection engine and the trainers plus the bytes-moved counters
// (with --scenario the run trains on the non-stationary stream through
// the chunked Loader and prints the per-epoch class distribution), and —
// with --fleet-jobs — (3) a small multi-tenant fleet run, which adds the
// prefixed per-device spans ("ssd0.flash_bus", "gpu1.gpu", ...) and the
// fleet.jobs.* counters. A trace file therefore holds spans from however
// many pipelines and device graphs ran in the session, NOT one pipeline
// trace per file. Then writes the Chrome trace-event JSON (load in
// chrome://tracing or Perfetto) and the flat metrics JSON. CI parses both
// and checks the phase names.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "nessa/fleet/fleet_sim.hpp"
#include "nessa/nessa.hpp"
#include "nessa/util/table.hpp"

using namespace nessa;

namespace {

struct Options {
  std::string trace_path = "trace.json";
  std::string metrics_path = "metrics.json";
  std::size_t pipeline_epochs = 6;
  std::size_t train_epochs = 3;
  double scale = 0.01;
  std::uint64_t seed = 42;
  std::string fault_plan;
  std::size_t fleet_jobs = 0;  ///< 0 = skip the fleet stage
  std::string scenario;        ///< empty = static substrate dataset
};

void print_usage() {
  std::cout << "usage: trace-dump [--trace PATH] [--metrics PATH]\n"
               "                  [--pipeline-epochs N] [--train-epochs N]\n"
               "                  [--scale S] [--seed N]\n"
               "                  [--fault-plan flaky-p2p|slow-nand|"
               "fpga-stall|FILE]\n"
               "                  [--fleet-jobs N]\n"
               "                  [--scenario drift|imbalance|noise-burst|"
               "duplicates]\n";
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (!v) return false;
      opt.trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = next("--metrics");
      if (!v) return false;
      opt.metrics_path = v;
    } else if (arg == "--pipeline-epochs") {
      const char* v = next("--pipeline-epochs");
      if (!v) return false;
      opt.pipeline_epochs = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--train-epochs") {
      const char* v = next("--train-epochs");
      if (!v) return false;
      opt.train_epochs = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (!v) return false;
      opt.scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--fault-plan") {
      const char* v = next("--fault-plan");
      if (!v) return false;
      opt.fault_plan = v;
    } else if (arg == "--fleet-jobs") {
      const char* v = next("--fleet-jobs");
      if (!v) return false;
      opt.fleet_jobs = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--scenario") {
      const char* v = next("--scenario");
      if (!v) return false;
      opt.scenario = v;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      print_usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 1;

  core::RunConfig rc;
  rc.train.epochs = opt.train_epochs;
  rc.train.seed = opt.seed;
  if (!opt.scenario.empty()) {
    // Scenario mode exercises the chunked streaming plan in BOTH clock
    // domains: the DES feeds the scan from sequential chunk fetches and the
    // substrate run pulls the scoring pool through fixed-budget chunks.
    rc.workload.chunk_records = 2048;
    rc.train.chunk_samples = 256;
  }
  rc.nessa.subset_fraction = 0.3;
  rc.nessa.partition_quota = 8;
  rc.nessa.drop_interval_epochs = 2;
  rc.nessa.loss_window_epochs = 2;
  rc.parallelism = true;
  rc.pipeline_epochs = opt.pipeline_epochs;
  rc.telemetry.enabled = true;
  rc.telemetry.trace_path = opt.trace_path;
  rc.telemetry.metrics_path = opt.metrics_path;
  if (!opt.fault_plan.empty()) {
    try {
      rc.fault_plan = fault::FaultPlan::parse(opt.fault_plan);
    } catch (const std::exception& e) {
      std::cerr << "fault plan error: " << e.what() << "\n";
      return 1;
    }
  }
  if (const auto errors = rc.validate(); !errors.empty()) {
    for (const auto& e : errors) std::cerr << "config error: " << e << "\n";
    return 1;
  }

  telemetry::Session session;

  // (1) Sim-clock domain: batch-granular pipeline schedule over the
  // component DeviceGraph.
  const auto trace = core::simulate(rc);
  std::cout << "pipeline: steady epoch "
            << util::to_seconds(trace.steady_epoch_time) << " s over "
            << rc.pipeline_epochs << " epochs";
  if (trace.chunk_fetches > 0) {
    std::cout << " (" << trace.chunk_fetches << " chunk fetches of "
              << rc.workload.chunk_records << " records)";
  }
  std::cout << "\n";
  if (rc.fault_plan.enabled()) {
    std::cout << "fault plan: " << rc.fault_plan.summary() << "\n";
  }

  util::Table usage("device-graph utilization");
  usage.set_header({"component", "busy (s)", "queue wait (s)", "util (%)",
                    "requests", "rejected", "failed", "GB moved"});
  for (const auto& u : trace.usage) {
    usage.add_row({u.name, util::Table::num(util::to_seconds(u.busy_time), 3),
                   util::Table::num(util::to_seconds(u.queue_wait), 3),
                   util::Table::pct(u.utilization),
                   util::Table::num(u.requests), util::Table::num(u.rejected),
                   util::Table::num(u.failed),
                   util::Table::num(static_cast<double>(u.bytes) / 1e9, 2)});
  }
  usage.print(std::cout);
  if (trace.fault.any()) {
    std::cout << "faults: " << trace.fault.injected_total() << " injected ("
              << trace.fault.injected_failures << " failures, "
              << trace.fault.injected_slowdowns << " slowdowns, "
              << trace.fault.injected_stalls << " stalls, "
              << trace.fault.injected_rejections << " rejections), "
              << trace.fault.retries << " retries, " << trace.fault.giveups
              << " give-ups, " << trace.fault.dropped_batches
              << " dropped batches"
              << (trace.fault.host_fallback ? ", host-path fallback" : "")
              << "\n";
  }

  // (2) Wall-clock domain: a short substrate NeSSA training run — on the
  // static substrate dataset, or with --scenario on the non-stationary
  // stream through the chunked Loader.
  const auto& info = data::dataset_info("CIFAR-10");
  std::unique_ptr<data::scenario::EpochStream> stream;
  std::optional<data::Dataset> substrate;
  if (!opt.scenario.empty()) {
    data::scenario::ScenarioConfig sc;
    try {
      sc.kind = data::scenario::kind_from_string(opt.scenario);
    } catch (const std::exception& e) {
      std::cerr << "scenario error: " << e.what() << "\n";
      return 1;
    }
    sc.seed = opt.seed;
    sc.train_size = std::max<std::size_t>(
        200, static_cast<std::size_t>(
                 static_cast<double>(info.paper_train_size) * opt.scale));
    stream = data::scenario::make_scenario(sc);
  } else {
    substrate = data::make_substrate_dataset(info, opt.scale, 0, opt.seed);
  }
  core::PipelineInputs inputs;
  inputs.dataset = stream ? &stream->base() : &*substrate;
  inputs.stream = stream.get();
  inputs.info = info;
  inputs.model = nn::model_spec(info.paper_network);
  inputs.train = rc.train;
  smartssd::SmartSsdSystem system(rc.system);
  const auto run = core::run(inputs, rc, system);
  std::cout << "train: " << run.epochs.size() << " epochs, final accuracy "
            << run.final_accuracy * 100.0 << " %";
  if (stream) std::cout << " (scenario " << opt.scenario << ")";
  std::cout << "\n";
  if (stream) {
    util::Table mix("per-epoch class distribution");
    mix.set_header({"epoch", "pool", "class counts"});
    for (const auto& e : run.epochs) {
      std::string counts;
      for (std::size_t c = 0; c < e.class_mix.size(); ++c) {
        if (c > 0) counts += " ";
        counts += std::to_string(e.class_mix[c]);
      }
      mix.add_row({util::Table::num(e.epoch), util::Table::num(e.pool_size),
                   counts});
    }
    mix.print(std::cout);
  }

  // (3) Fleet domain: a small multi-tenant run adds the per-device
  // prefixed component spans and the per-tenant job columns below.
  if (opt.fleet_jobs > 0) {
    fleet::FleetConfig fc;
    fc.devices = 2;
    fc.gpus = 2;
    fc.preempt_quantum_epochs = 2;
    fc.job.pipeline_epochs = 4;
    fleet::PoissonConfig poisson;
    poisson.jobs = opt.fleet_jobs;
    poisson.tenants = 4;
    poisson.rate_per_s = 200.0;
    poisson.seed = opt.seed;
    const auto fr = fleet::run_fleet(fc, fleet::poisson_arrivals(poisson));
    std::cout << "fleet: " << fr.arrivals << " arrivals, " << fr.completed
              << " completed, Jain " << fr.jain_fairness << "\n";
    util::Table tenants("fleet per-tenant");
    tenants.set_header({"tenant", "admitted", "rejected", "preempted",
                        "p50 (s)", "p99 (s)"});
    for (const auto& t : fr.tenants) {
      tenants.add_row({util::Table::num(static_cast<std::size_t>(t.tenant)),
                       util::Table::num(t.admitted),
                       util::Table::num(t.rejected),
                       util::Table::num(t.preemptions),
                       util::Table::num(t.p50_latency_s, 3),
                       util::Table::num(t.p99_latency_s, 3)});
    }
    tenants.print(std::cout);
  }

  try {
    session.trace().write_chrome_trace_file(rc.telemetry.trace_path);
    session.metrics().write_json_file(rc.telemetry.metrics_path);
  } catch (const std::exception& e) {
    std::cerr << "export failed: " << e.what() << "\n";
    return 1;
  }
  std::cout << "trace JSON  : " << rc.telemetry.trace_path << " ("
            << session.trace().size() << " events)\n"
            << "metrics JSON: " << rc.telemetry.metrics_path << "\n";
  return 0;
}
