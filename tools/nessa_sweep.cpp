// nessa-sweep — subset-fraction sweep across pipelines: the classic
// accuracy-vs-budget coreset curve (what Table 3's columns sample at three
// points), plus epoch time and data movement per point.
//
//   nessa-sweep [--dataset NAME] [--epochs N] [--scale S] [--seed N]
//               [--fractions 0.05,0.1,0.2,0.3,0.5]
//               [--pipelines nessa,random,craig,kcenter,loss-topk]
//               [--csv PATH]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "nessa/core/run.hpp"
#include "nessa/util/table.hpp"

using namespace nessa;

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "CIFAR-10";
  std::size_t epochs = 20;
  double scale = 0.03;
  std::uint64_t seed = 42;
  std::string fractions_arg = "0.05,0.1,0.2,0.3,0.5";
  std::string pipelines_arg = "nessa,random";
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dataset") {
      if (const char* v = next()) dataset = v;
    } else if (arg == "--epochs") {
      if (const char* v = next()) epochs = std::atol(v);
    } else if (arg == "--scale") {
      if (const char* v = next()) scale = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) seed = std::atoll(v);
    } else if (arg == "--fractions") {
      if (const char* v = next()) fractions_arg = v;
    } else if (arg == "--pipelines") {
      if (const char* v = next()) pipelines_arg = v;
    } else if (arg == "--csv") {
      if (const char* v = next()) csv_path = v;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 1;
    }
  }

  const auto& info = data::dataset_info(dataset);
  auto ds = data::make_substrate_dataset(info, scale, 0, seed);

  core::PipelineInputs inputs;
  inputs.dataset = &ds;
  inputs.info = info;
  inputs.model = nn::model_spec(info.paper_network);
  inputs.train.epochs = epochs;
  inputs.train.batch_size = 128;
  inputs.train.seed = seed;

  std::cout << "fraction sweep on " << dataset << " (" << ds.train_size()
            << " substrate samples, " << epochs << " epochs)\n\n";

  // The full-data reference.
  core::RunConfig base_rc;
  base_rc.train = inputs.train;
  base_rc.pipeline = core::PipelineKind::kFull;
  smartssd::SmartSsdSystem full_sys;
  auto full = core::run(inputs, base_rc, full_sys);

  util::Table table;
  table.set_header({"pipeline", "fraction", "accuracy (%)", "epoch (s)",
                    "interconnect (GB)"});
  table.add_row({"full", "1.00", util::Table::pct(full.final_accuracy),
                 util::Table::num(util::to_seconds(full.mean_epoch_time), 2),
                 util::Table::num(
                     static_cast<double>(full.interconnect_bytes) / 1e9, 2)});

  for (const auto& pipeline : split_csv(pipelines_arg)) {
    for (const auto& frac_text : split_csv(fractions_arg)) {
      const double fraction = std::atof(frac_text.c_str());
      if (fraction <= 0.0 || fraction > 1.0) {
        std::cerr << "skipping bad fraction " << frac_text << "\n";
        continue;
      }
      smartssd::SmartSsdSystem sys;
      core::RunConfig rc = base_rc;
      try {
        rc.pipeline = core::pipeline_kind_from_string(pipeline);
      } catch (const std::exception&) {
        std::cerr << "unknown pipeline " << pipeline << "\n";
        return 1;
      }
      rc.nessa.subset_fraction = fraction;
      if (rc.pipeline == core::PipelineKind::kNessa) {
        rc.nessa.dynamic_sizing = false;
        rc.nessa.min_subset_fraction = fraction;
        rc.nessa.partition_quota = 8;
        rc.nessa.drop_interval_epochs = std::max<std::size_t>(3, epochs / 4);
        rc.nessa.loss_window_epochs = std::max<std::size_t>(2, epochs / 40);
      }
      core::RunResult run = core::run(inputs, rc, sys);
      table.add_row(
          {pipeline, util::Table::num(fraction, 2),
           util::Table::pct(run.final_accuracy),
           util::Table::num(util::to_seconds(run.mean_epoch_time), 2),
           util::Table::num(
               static_cast<double>(run.interconnect_bytes) / 1e9, 2)});
      std::cerr << "[sweep] " << pipeline << " @ " << frac_text << " done\n";
    }
  }
  table.print(std::cout);

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    table.write_csv(csv);
    std::cout << "\nCSV written to " << csv_path << "\n";
  }
  return 0;
}
