// fleet — drive the multi-tenant SmartSSD fleet simulator.
//
//   fleet [--devices N] [--gpus M] [--jobs-per-device N]
//         [--jobs N] [--tenants N] [--rate R] [--seed N]     (Poisson source)
//         [--arrivals FILE]                                  (trace source)
//         [--pipeline NAME] [--epochs N]
//         [--queue-capacity N] [--policy reject|defer] [--quantum N]
//         [--chunk-records N] [--fault-plan NAME|FILE] [--probe-us N]
//         [--engine calendar|heap] [--summary PATH] [--metrics PATH]
//
// Builds the arrival stream (a seeded Poisson process by default, or a
// `<at_us> <tenant> [weight] [epochs]` text trace via --arrivals), runs it
// through fleet::run_fleet, prints the per-tenant and per-component tables,
// and optionally writes the machine-readable summary JSON that the CI
// fleet-smoke job validates.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "nessa/fleet/fleet_sim.hpp"
#include "nessa/nessa.hpp"
#include "nessa/util/table.hpp"

using namespace nessa;

namespace {

struct Options {
  std::size_t devices = 4;
  std::size_t gpus = 2;
  std::size_t jobs_per_device = 4;
  std::size_t jobs = 1000;
  std::uint32_t tenants = 8;
  double rate = 50.0;
  std::uint64_t seed = 42;
  std::string arrivals_path;
  std::string pipeline = "nessa";
  std::size_t epochs = 4;
  std::size_t queue_capacity = 64;
  std::string policy = "defer";
  std::size_t quantum = 0;
  std::size_t chunk_records = 0;
  std::string fault_plan;
  std::uint64_t probe_us = 0;
  std::string engine = "calendar";
  std::string summary_path;
  std::string metrics_path;
};

void print_usage() {
  std::cout
      << "usage: fleet [--devices N] [--gpus M] [--jobs-per-device N]\n"
         "             [--jobs N] [--tenants N] [--rate R] [--seed N]\n"
         "             [--arrivals FILE] [--pipeline NAME] [--epochs N]\n"
         "             [--queue-capacity N] [--policy reject|defer]\n"
         "             [--quantum N] [--chunk-records N]\n"
         "             [--fault-plan NAME|FILE] [--probe-us N]\n"
         "             [--engine calendar|heap]\n"
         "             [--summary PATH] [--metrics PATH]\n";
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    } else if (arg == "--devices" && (v = next("--devices"))) {
      opt.devices = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--gpus" && (v = next("--gpus"))) {
      opt.gpus = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--jobs-per-device" && (v = next("--jobs-per-device"))) {
      opt.jobs_per_device = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--jobs" && (v = next("--jobs"))) {
      opt.jobs = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--tenants" && (v = next("--tenants"))) {
      opt.tenants = static_cast<std::uint32_t>(std::atol(v));
    } else if (arg == "--rate" && (v = next("--rate"))) {
      opt.rate = std::atof(v);
    } else if (arg == "--seed" && (v = next("--seed"))) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--arrivals" && (v = next("--arrivals"))) {
      opt.arrivals_path = v;
    } else if (arg == "--pipeline" && (v = next("--pipeline"))) {
      opt.pipeline = v;
    } else if (arg == "--epochs" && (v = next("--epochs"))) {
      opt.epochs = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--queue-capacity" && (v = next("--queue-capacity"))) {
      opt.queue_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--policy" && (v = next("--policy"))) {
      opt.policy = v;
    } else if (arg == "--quantum" && (v = next("--quantum"))) {
      opt.quantum = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--chunk-records" && (v = next("--chunk-records"))) {
      opt.chunk_records = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--fault-plan" && (v = next("--fault-plan"))) {
      opt.fault_plan = v;
    } else if (arg == "--probe-us" && (v = next("--probe-us"))) {
      opt.probe_us = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--engine" && (v = next("--engine"))) {
      opt.engine = v;
    } else if (arg == "--summary" && (v = next("--summary"))) {
      opt.summary_path = v;
    } else if (arg == "--metrics" && (v = next("--metrics"))) {
      opt.metrics_path = v;
    } else if (v == nullptr && arg.rfind("--", 0) == 0 && i + 1 >= argc) {
      return false;  // `next` already printed the missing-value error
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      print_usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 1;

  fleet::FleetConfig config;
  config.devices = opt.devices;
  config.gpus = opt.gpus;
  config.jobs_per_device = opt.jobs_per_device;
  config.queue_capacity = opt.queue_capacity;
  config.preempt_quantum_epochs = opt.quantum;
  config.job.workload.chunk_records = opt.chunk_records;
  config.job.pipeline_epochs = opt.epochs < 2 ? 2 : opt.epochs;
  if (opt.policy == "reject") {
    config.policy = fleet::AdmissionPolicy::kReject;
  } else if (opt.policy == "defer") {
    config.policy = fleet::AdmissionPolicy::kDefer;
  } else {
    std::cerr << "unknown policy: " << opt.policy << "\n";
    return 1;
  }
  if (opt.engine == "calendar") {
    config.engine = sim::QueueKind::kCalendar;
  } else if (opt.engine == "heap") {
    config.engine = sim::QueueKind::kHeap;
  } else {
    std::cerr << "unknown engine: " << opt.engine << "\n";
    return 1;
  }
  try {
    config.job.pipeline = core::pipeline_kind_from_string(opt.pipeline);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (!opt.fault_plan.empty()) {
    try {
      config.job.fault_plan = fault::FaultPlan::parse(opt.fault_plan);
    } catch (const std::exception& e) {
      std::cerr << "fault plan error: " << e.what() << "\n";
      return 1;
    }
  }
  if (opt.probe_us > 0) {
    config.health.probe_interval =
        static_cast<util::SimTime>(opt.probe_us) * util::kMicrosecond;
  }

  std::vector<fleet::Arrival> arrivals;
  try {
    if (!opt.arrivals_path.empty()) {
      arrivals = fleet::load_arrival_trace(opt.arrivals_path);
    } else {
      fleet::PoissonConfig poisson;
      poisson.rate_per_s = opt.rate;
      poisson.jobs = opt.jobs;
      poisson.tenants = opt.tenants;
      poisson.seed = opt.seed;
      arrivals = fleet::poisson_arrivals(poisson);
    }
  } catch (const std::exception& e) {
    std::cerr << "arrival stream error: " << e.what() << "\n";
    return 1;
  }

  telemetry::Session session;
  fleet::FleetResult result;
  try {
    result = fleet::run_fleet(config, arrivals);
  } catch (const std::exception& e) {
    std::cerr << "fleet error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "fleet: " << config.devices << " SmartSSDs, " << config.gpus
            << " GPUs, " << result.arrivals << " arrivals ("
            << (opt.arrivals_path.empty() ? "poisson" : opt.arrivals_path)
            << "), engine " << opt.engine << "\n"
            << "jobs: " << result.admitted << " admitted, " << result.rejected
            << " rejected, " << result.deferred << " deferred, "
            << result.completed << " completed, " << result.preemptions
            << " preemptions, " << result.resumes << " resumes\n"
            << "failures: " << result.migrations << " migrations, "
            << result.failed_permanently << " failed permanently, "
            << result.chunk_corruptions << " corrupt fetches, "
            << result.quarantined_chunks << " quarantined chunks\n"
            << "latency: p50 " << result.p50_latency_s << " s, p99 "
            << result.p99_latency_s << " s, mean " << result.mean_latency_s
            << " s over " << util::to_seconds(result.makespan)
            << " s makespan\n"
            << "fairness: Jain " << result.jain_fairness
            << ", peak queue depth " << result.peak_queue_depth
            << ", peak overflow " << result.peak_overflow_depth << "\n";

  util::Table tenants("per-tenant");
  tenants.set_header({"tenant", "weight", "arrivals", "admitted", "rejected",
                      "completed", "preempted", "p50 (s)", "p99 (s)",
                      "gpu (s)"});
  for (const auto& t : result.tenants) {
    tenants.add_row({util::Table::num(static_cast<std::size_t>(t.tenant)), util::Table::num(static_cast<std::size_t>(t.weight)),
                     util::Table::num(t.arrivals),
                     util::Table::num(t.admitted),
                     util::Table::num(t.rejected),
                     util::Table::num(t.completed),
                     util::Table::num(t.preemptions),
                     util::Table::num(t.p50_latency_s, 3),
                     util::Table::num(t.p99_latency_s, 3),
                     util::Table::num(t.gpu_service_s, 3)});
  }
  tenants.print(std::cout);

  util::Table components("per-component utilization");
  components.set_header({"component", "util (%)", "requests", "GB moved"});
  for (const auto& c : result.components) {
    components.add_row(
        {c.name, util::Table::pct(c.utilization), util::Table::num(c.requests),
         util::Table::num(static_cast<double>(c.bytes) / 1e9, 2)});
  }
  components.print(std::cout);

  if (!result.health.empty()) {
    util::Table health("device health");
    health.set_header({"device", "failures", "detections", "migrated out",
                       "availability", "detect (s)", "mttr (s)"});
    for (const auto& h : result.health) {
      health.add_row({util::Table::num(static_cast<std::size_t>(h.device)),
                      util::Table::num(static_cast<std::size_t>(h.failures)),
                      util::Table::num(h.detections),
                      util::Table::num(h.migrations_out),
                      util::Table::num(h.availability, 4),
                      util::Table::num(h.mean_detection_latency_s, 6),
                      util::Table::num(h.mttr_s, 6)});
    }
    health.print(std::cout);
  }

  if (!opt.summary_path.empty()) {
    std::ofstream out(opt.summary_path);
    if (!out) {
      std::cerr << "cannot write summary: " << opt.summary_path << "\n";
      return 1;
    }
    result.write_summary_json(out);
    std::cout << "summary JSON: " << opt.summary_path << "\n";
  }
  if (!opt.metrics_path.empty()) {
    try {
      session.metrics().write_json_file(opt.metrics_path);
    } catch (const std::exception& e) {
      std::cerr << "metrics export failed: " << e.what() << "\n";
      return 1;
    }
    std::cout << "metrics JSON: " << opt.metrics_path << "\n";
  }
  return 0;
}
