// nessa — command-line front end for the training pipelines.
//
//   nessa [options]
//     --dataset NAME      Table-1 dataset stand-in (default CIFAR-10)
//     --pipeline NAME     nessa | full | full-cached | craig | kcenter |
//                         random | loss-topk        (default nessa)
//     --fraction F        subset fraction            (default 0.3)
//     --epochs N          substrate epochs           (default 30)
//     --scale S           substrate scale            (default 0.03)
//     --devices D         SmartSSD count (nessa only, default 1)
//     --gpu NAME          A100 | V100 | K1200        (default V100)
//     --seed N            RNG seed                   (default 42)
//     --no-feedback       disable §3.2.1 quantized-weight feedback
//     --no-biasing        disable §3.2.2 subset biasing
//     --no-partitioning   disable §3.2.3 dataset partitioning
//     --no-dynamic        disable dynamic subset sizing
//     --parallel          run the selection engine on the thread pool
//     --perf-model NAME   analytic | event epoch-cost model (default analytic)
//     --fault-plan X      fault preset (flaky-p2p | slow-nand | fpga-stall)
//                         or plan-file path; faults degrade the run
//     --checkpoint-dir P  write crash-consistent snapshots into P
//     --checkpoint-every N  snapshot cadence in epochs (default 1)
//     --resume            resume from the newest valid snapshot in the
//                         checkpoint dir (strips any crash kill point from
//                         the fault plan); exits nonzero when none exists
//     --scenario NAME     non-stationary stream preset (drift | imbalance |
//                         noise-burst | duplicates) instead of a static
//                         substrate dataset; adds a class-mix column
//     --scenario-summary P  with --scenario: run nessa vs random vs full
//                         over the same stream and write the comparison
//                         summary JSON to P (used by CI scenario-smoke)
//     --chunk-samples N   stream the selection scan through N-sample
//                         storage chunks (0 = monolithic scan, default)
//     --trace PATH        write a Chrome trace-event JSON of the run
//     --metrics PATH      write the counters/gauges/histograms JSON
//     --csv PATH          also write the per-epoch table as CSV
//     --json PATH         also write the full run report as JSON
//     --help
//
// Exit codes: 0 success, 1 usage/config error (including --resume with no
// valid snapshot), 3 run terminated by an injected crash kill point.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "nessa/ckpt/errors.hpp"
#include "nessa/core/energy.hpp"
#include "nessa/core/report.hpp"
#include "nessa/core/run.hpp"
#include "nessa/core/scenario_run.hpp"
#include "nessa/fault/crash.hpp"
#include "nessa/telemetry/telemetry.hpp"
#include "nessa/util/table.hpp"

using namespace nessa;

namespace {

struct Options {
  std::string dataset = "CIFAR-10";
  std::string pipeline = "nessa";
  std::string gpu = "V100";
  double fraction = 0.3;
  std::size_t epochs = 30;
  double scale = 0.03;
  std::size_t devices = 1;
  std::uint64_t seed = 42;
  bool feedback = true;
  bool biasing = true;
  bool partitioning = true;
  bool dynamic_sizing = true;
  bool parallel = false;
  std::string perf_model = "analytic";
  std::string fault_plan;
  std::string scenario;
  std::string scenario_summary_path;
  std::size_t chunk_samples = 0;
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::string trace_path;
  std::string metrics_path;
  std::string csv_path;
  std::string json_path;
};

void print_usage() {
  std::cout <<
      "usage: nessa [--dataset NAME] [--pipeline nessa|full|full-cached|"
      "craig|kcenter|random|loss-topk]\n"
      "             [--fraction F] [--epochs N] [--scale S] [--devices D]\n"
      "             [--gpu A100|V100|K1200] [--seed N] [--no-feedback]\n"
      "             [--no-biasing] [--no-partitioning] [--no-dynamic]\n"
      "             [--parallel] [--perf-model analytic|event]\n"
      "             [--fault-plan flaky-p2p|slow-nand|fpga-stall|FILE]\n"
      "             [--scenario drift|imbalance|noise-burst|duplicates]\n"
      "             [--scenario-summary PATH] [--chunk-samples N]\n"
      "             [--checkpoint-dir PATH] [--checkpoint-every N] "
      "[--resume]\n"
      "             [--trace PATH] [--metrics PATH]\n"
      "             [--csv PATH] [--json PATH]\n";
}

enum class ParseResult { kRun, kHelp, kError };

ParseResult parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return ParseResult::kHelp;
    } else if (arg == "--dataset") {
      const char* v = next("--dataset");
      if (!v) return ParseResult::kError;
      opt.dataset = v;
    } else if (arg == "--pipeline") {
      const char* v = next("--pipeline");
      if (!v) return ParseResult::kError;
      opt.pipeline = v;
    } else if (arg == "--gpu") {
      const char* v = next("--gpu");
      if (!v) return ParseResult::kError;
      opt.gpu = v;
    } else if (arg == "--fraction") {
      const char* v = next("--fraction");
      if (!v) return ParseResult::kError;
      opt.fraction = std::atof(v);
    } else if (arg == "--epochs") {
      const char* v = next("--epochs");
      if (!v) return ParseResult::kError;
      opt.epochs = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (!v) return ParseResult::kError;
      opt.scale = std::atof(v);
    } else if (arg == "--devices") {
      const char* v = next("--devices");
      if (!v) return ParseResult::kError;
      opt.devices = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return ParseResult::kError;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--no-feedback") {
      opt.feedback = false;
    } else if (arg == "--no-biasing") {
      opt.biasing = false;
    } else if (arg == "--no-partitioning") {
      opt.partitioning = false;
    } else if (arg == "--no-dynamic") {
      opt.dynamic_sizing = false;
    } else if (arg == "--parallel") {
      opt.parallel = true;
    } else if (arg == "--perf-model") {
      const char* v = next("--perf-model");
      if (!v) return ParseResult::kError;
      opt.perf_model = v;
    } else if (arg == "--fault-plan") {
      const char* v = next("--fault-plan");
      if (!v) return ParseResult::kError;
      opt.fault_plan = v;
    } else if (arg == "--scenario") {
      const char* v = next("--scenario");
      if (!v) return ParseResult::kError;
      opt.scenario = v;
    } else if (arg == "--scenario-summary") {
      const char* v = next("--scenario-summary");
      if (!v) return ParseResult::kError;
      opt.scenario_summary_path = v;
    } else if (arg == "--chunk-samples") {
      const char* v = next("--chunk-samples");
      if (!v) return ParseResult::kError;
      opt.chunk_samples = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--checkpoint-dir") {
      const char* v = next("--checkpoint-dir");
      if (!v) return ParseResult::kError;
      opt.checkpoint_dir = v;
    } else if (arg == "--checkpoint-every") {
      const char* v = next("--checkpoint-every");
      if (!v) return ParseResult::kError;
      opt.checkpoint_every = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (!v) return ParseResult::kError;
      opt.trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = next("--metrics");
      if (!v) return ParseResult::kError;
      opt.metrics_path = v;
    } else if (arg == "--csv") {
      const char* v = next("--csv");
      if (!v) return ParseResult::kError;
      opt.csv_path = v;
    } else if (arg == "--json") {
      const char* v = next("--json");
      if (!v) return ParseResult::kError;
      opt.json_path = v;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      print_usage();
      return ParseResult::kError;
    }
  }
  return ParseResult::kRun;
}

/// Compact per-epoch class-distribution cell: per-class percentages of the
/// epoch's visible pool, slash-separated ("23/9/11/...").
std::string class_mix_cell(const std::vector<std::uint32_t>& mix) {
  if (mix.empty()) return "-";
  std::uint64_t total = 0;
  for (std::uint32_t count : mix) total += count;
  if (total == 0) return "-";
  std::string cell;
  for (std::size_t c = 0; c < mix.size(); ++c) {
    if (c > 0) cell += "/";
    cell += std::to_string(
        (static_cast<std::uint64_t>(mix[c]) * 100 + total / 2) / total);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  switch (parse(argc, argv, opt)) {
    case ParseResult::kRun: break;
    case ParseResult::kHelp: return 0;
    case ParseResult::kError: return 1;
  }

  const auto& info = data::dataset_info(opt.dataset);

  // A scenario preset replaces the static substrate dataset with a
  // non-stationary per-epoch stream over the same paper-scale metadata.
  data::scenario::ScenarioConfig scenario_config;
  std::unique_ptr<data::scenario::EpochStream> stream;
  std::optional<data::Dataset> substrate;
  if (!opt.scenario.empty()) {
    try {
      scenario_config.kind = data::scenario::kind_from_string(opt.scenario);
    } catch (const std::exception& e) {
      std::cerr << "config error: " << e.what() << "\n";
      return 1;
    }
    scenario_config.seed = opt.seed;
    scenario_config.train_size = std::max<std::size_t>(
        200, static_cast<std::size_t>(
                 static_cast<double>(info.paper_train_size) * opt.scale));
    stream = data::scenario::make_scenario(scenario_config);
  } else {
    if (!opt.scenario_summary_path.empty()) {
      std::cerr << "config error: --scenario-summary requires --scenario\n";
      return 1;
    }
    substrate = data::make_substrate_dataset(info, opt.scale, 0, opt.seed);
  }

  core::PipelineInputs inputs;
  inputs.dataset = stream ? &stream->base() : &*substrate;
  inputs.stream = stream.get();
  inputs.info = info;
  inputs.model = nn::model_spec(info.paper_network);
  inputs.train.epochs = opt.epochs;
  inputs.train.batch_size = 128;
  inputs.train.seed = opt.seed;
  inputs.train.chunk_samples = opt.chunk_samples;

  // One validated RunConfig drives the run end to end.
  core::RunConfig rc;
  rc.system.gpu = opt.gpu;
  rc.train = inputs.train;
  rc.nessa.subset_fraction = opt.fraction;
  rc.nessa.weight_feedback = opt.feedback;
  rc.nessa.subset_biasing = opt.biasing;
  rc.nessa.partition_quota = opt.partitioning ? 8 : 0;
  rc.nessa.dynamic_sizing = opt.dynamic_sizing;
  rc.nessa.drop_interval_epochs = std::max<std::size_t>(3, opt.epochs / 4);
  rc.nessa.loss_window_epochs = std::max<std::size_t>(2, opt.epochs / 40);
  rc.parallelism = opt.parallel;
  rc.dataset = opt.dataset;
  rc.dataset_scale = opt.scale;
  rc.devices = opt.devices;
  try {
    rc.pipeline = core::pipeline_kind_from_string(opt.pipeline);
    rc.perf_model = core::perf_model_from_string(opt.perf_model);
    if (!opt.fault_plan.empty()) {
      rc.fault_plan = fault::FaultPlan::parse(opt.fault_plan);
    }
  } catch (const std::exception& e) {
    std::cerr << "config error: " << e.what() << "\n";
    print_usage();
    return 1;
  }
  rc.checkpoint.dir = opt.checkpoint_dir;
  rc.checkpoint.every_epochs = opt.checkpoint_every;
  rc.checkpoint.resume = opt.resume;
  if (opt.resume) {
    // The kill point belongs to the run that crashed; the resuming run
    // finishes the remaining epochs.
    rc.fault_plan = rc.fault_plan.without_crash_point();
  }
  rc.telemetry.enabled =
      !opt.trace_path.empty() || !opt.metrics_path.empty();
  rc.telemetry.trace_path = opt.trace_path;
  rc.telemetry.metrics_path = opt.metrics_path;
  if (const auto errors = rc.validate(); !errors.empty()) {
    for (const auto& e : errors) std::cerr << "config error: " << e << "\n";
    return 1;
  }
  inputs.perf_model = rc.perf_model;
  // The non-RunConfig entry points (multi-device, baselines) read the fault
  // plan and checkpoint config straight from the staged inputs.
  inputs.fault_plan = rc.fault_plan;
  inputs.checkpoint = rc.checkpoint;

  std::optional<telemetry::Session> session;
  if (rc.telemetry.enabled) session.emplace();

  if (!opt.scenario_summary_path.empty()) {
    // Comparison mode: nessa vs random vs full over the SAME stream.
    core::ScenarioRunConfig scfg;
    scfg.scenario = scenario_config;
    scfg.dataset = opt.dataset;
    scfg.train = inputs.train;
    scfg.nessa = rc.nessa;
    scfg.perf_model = rc.perf_model;
    scfg.system = rc.system;
    const auto result = core::run_scenario(scfg);
    core::write_scenario_summary_json_file(result, opt.scenario_summary_path);

    std::cout << "scenario " << opt.scenario << " on " << info.name
              << " (stream " << scenario_config.train_size
              << " samples/epoch, seed " << scenario_config.seed;
    if (opt.chunk_samples > 0) {
      std::cout << ", " << opt.chunk_samples << "-sample chunks";
    }
    std::cout << ")\n\n";
    util::Table cmp("scenario comparison");
    cmp.set_header({"pipeline", "final acc (%)", "best acc (%)",
                    "mean subset (%)", "mean overlap", "chunk fetches",
                    "total time (s)"});
    for (const auto& outcome : result.outcomes) {
      const core::RunResult& r = outcome.result;
      std::uint64_t fetches = 0;
      double overlap = 0.0;
      for (const auto& e : r.epochs) {
        fetches += e.chunk_fetches;
        overlap += e.selection_overlap;
      }
      if (!r.epochs.empty()) overlap /= static_cast<double>(r.epochs.size());
      cmp.add_row({std::string(core::to_string(outcome.pipeline)),
                   util::Table::pct(r.final_accuracy),
                   util::Table::pct(r.best_accuracy),
                   util::Table::pct(r.mean_subset_fraction),
                   util::Table::num(overlap, 3), util::Table::num(fetches),
                   util::Table::num(util::to_seconds(r.total_time), 2)});
    }
    cmp.print(std::cout);
    std::cout << "\nscenario summary    : " << opt.scenario_summary_path
              << "\n";
    if (session) {
      if (!rc.telemetry.trace_path.empty()) {
        session->trace().write_chrome_trace_file(rc.telemetry.trace_path);
      }
      if (!rc.telemetry.metrics_path.empty()) {
        session->metrics().write_json_file(rc.telemetry.metrics_path);
      }
    }
    return 0;
  }

  smartssd::SmartSsdSystem system(rc.system);

  core::RunResult run;
  // The energy report prices the selection pass by where it ran.
  auto site = core::SelectionSite::kNone;
  switch (rc.pipeline) {
    case core::PipelineKind::kNessa:
      site = core::SelectionSite::kFpga;
      break;
    case core::PipelineKind::kCraig:
    case core::PipelineKind::kKCenter:
      site = core::SelectionSite::kHostCpu;
      break;
    default:
      break;
  }
  try {
    run = core::run(inputs, rc, system);
  } catch (const fault::InjectedCrash& crash) {
    std::cerr << "run terminated by injected crash: " << crash.what() << "\n";
    if (!opt.checkpoint_dir.empty()) {
      std::cerr << "resume with: --checkpoint-dir " << opt.checkpoint_dir
                << " --resume\n";
    }
    return 3;
  } catch (const ckpt::SnapshotError& e) {
    std::cerr << "checkpoint error: " << e.what() << "\n";
    if (e.fault() == ckpt::SnapshotFault::kNoSnapshot) print_usage();
    return 1;
  }

  std::cout << opt.pipeline << " on " << info.name;
  if (stream) std::cout << " (scenario " << opt.scenario << "; stream ";
  else std::cout << " (substrate ";
  std::cout << inputs.dataset->train_size() << " samples; paper scale "
            << info.paper_train_size << " x "
            << info.stored_bytes_per_sample << " B, " << info.paper_network
            << ", " << opt.gpu;
  if (opt.devices > 1) std::cout << ", " << opt.devices << " SmartSSDs";
  std::cout << ")\n";
  if (!opt.fault_plan.empty()) {
    std::cout << "fault plan: " << rc.fault_plan.summary() << "\n";
  }
  std::cout << "\n";

  util::Table table("per-epoch report");
  std::vector<std::string> header = {"epoch",      "acc (%)", "loss",
                                     "subset (%)", "pool",    "epoch time (s)"};
  if (stream) header.push_back("class mix (%)");
  table.set_header(header);
  for (const auto& e : run.epochs) {
    std::vector<std::string> row = {
        util::Table::num(e.epoch),
        util::Table::pct(e.test_accuracy),
        util::Table::num(e.train_loss, 3),
        util::Table::pct(e.subset_fraction),
        util::Table::num(e.pool_size),
        util::Table::num(util::to_seconds(e.cost.total()), 2)};
    if (stream) row.push_back(class_mix_cell(e.class_mix));
    table.add_row(row);
  }
  table.print(std::cout);

  auto energy = core::estimate_energy(run, system.gpu(), site);
  std::cout << "\nfinal accuracy      : "
            << util::Table::pct(run.final_accuracy) << " %\n"
            << "best accuracy       : " << util::Table::pct(run.best_accuracy)
            << " %\n"
            << "mean subset         : "
            << util::Table::pct(run.mean_subset_fraction) << " %\n"
            << "mean epoch time     : "
            << util::Table::num(util::to_seconds(run.mean_epoch_time), 2)
            << " s (simulated, paper scale)\n"
            << "interconnect traffic: "
            << util::Table::num(
                   static_cast<double>(run.interconnect_bytes) / 1e9, 2)
            << " GB\n"
            << "energy estimate     : "
            << util::Table::num(energy.total() / 1e3, 2) << " kJ\n";
  if (!opt.fault_plan.empty()) {
    std::cout << "fault fallbacks     : " << run.fault_fallback_epochs
              << " epoch(s) re-priced over the host path\n"
              << "stale subsets       : " << run.fault_stale_epochs
              << " epoch(s) trained on a carried-forward subset\n";
  }

  if (!opt.json_path.empty()) {
    core::RunMetadata run_meta{opt.pipeline, info.name, info.paper_network,
                               opt.gpu, opt.devices, opt.seed};
    core::write_json_report_file(run_meta, run, opt.json_path);
    std::cout << "run JSON            : " << opt.json_path << "\n";
  }
  if (!opt.csv_path.empty()) {
    std::ofstream csv(opt.csv_path);
    if (!csv) {
      std::cerr << "cannot write " << opt.csv_path << "\n";
      return 1;
    }
    table.write_csv(csv);
    std::cout << "per-epoch CSV       : " << opt.csv_path << "\n";
  }
  if (session) {
    if (!rc.telemetry.trace_path.empty()) {
      session->trace().write_chrome_trace_file(rc.telemetry.trace_path);
      std::cout << "trace JSON          : " << rc.telemetry.trace_path
                << "\n";
    }
    if (!rc.telemetry.metrics_path.empty()) {
      session->metrics().write_json_file(rc.telemetry.metrics_path);
      std::cout << "metrics JSON        : " << rc.telemetry.metrics_path
                << "\n";
    }
  }
  return 0;
}
