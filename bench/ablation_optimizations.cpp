// Ablation bench for the design choices DESIGN.md calls out beyond the
// paper's own Table 3:
//   - §3.2.1 quantized-weight feedback on/off (the paper motivates it but
//     never ablates it),
//   - contribution (4) dynamic subset sizing on/off,
//   - gradient-embedding flavour (plain vs penultimate-norm scaled),
//   - greedy maximizer flavour (lazy vs stochastic) — accuracy and the
//     selection work it saves,
//   - loss-top-k [19] as an extra selection-policy comparison.
#include <iostream>

#include "bench_common.hpp"

using namespace nessa;

int main() {
  bench::BenchConfig cfg;
  cfg.epochs = bench::env_size_t("NESSA_BENCH_EPOCHS", 20);
  bench::print_banner("Ablation: NeSSA design choices, CIFAR-10", cfg);

  auto c = bench::make_case("CIFAR-10", cfg);
  auto& inputs = c.bind();

  struct Row {
    std::string name;
    core::RunResult result;
  };
  std::vector<Row> rows;

  auto base = bench::scaled_nessa(0.30, cfg);
  base.dynamic_sizing = false;
  base.min_subset_fraction = 0.30;

  auto run = [&](const std::string& name, core::NessaConfig nessa_cfg) {
    smartssd::SmartSsdSystem sys;
    rows.push_back({name, bench::nessa_run(inputs, nessa_cfg, sys)});
    std::cerr << "[ablation] " << name << " done\n";
  };

  run("baseline (SB+PA, feedback, lazy)", base);

  auto no_feedback = base;
  no_feedback.weight_feedback = false;
  run("no weight feedback (3.2.1 off)", no_feedback);

  auto dynamic = base;
  dynamic.dynamic_sizing = true;
  dynamic.min_subset_fraction = 0.12;
  run("+ dynamic subset sizing", dynamic);

  auto scaled = base;
  scaled.scaled_embeddings = true;
  run("scaled gradient embeddings", scaled);

  auto stochastic = base;
  stochastic.greedy = selection::GreedyKind::kStochastic;
  run("stochastic greedy (eps=0.1)", stochastic);

  auto sparse_select = base;
  sparse_select.selection_interval = 5;
  run("re-select every 5 epochs", sparse_select);

  {
    smartssd::SmartSsdSystem sys;
    rows.push_back(
        {"loss-top-k selection [19]", core::run_loss_topk(inputs, 0.30, sys)});
    std::cerr << "[ablation] loss-top-k done\n";
  }

  util::Table table;
  table.set_header({"variant", "acc (%)", "mean subset (%)", "epoch (s)",
                    "P2P GB/run"});
  for (const auto& row : rows) {
    table.add_row(
        {row.name, util::Table::pct(row.result.final_accuracy),
         util::Table::pct(row.result.mean_subset_fraction),
         util::Table::num(util::to_seconds(row.result.mean_epoch_time), 2),
         util::Table::num(static_cast<double>(row.result.p2p_bytes) / 1e9,
                          2)});
  }
  table.print(std::cout);
  std::cout << "\nreading: losing the feedback loop costs about a point; "
               "dynamic sizing shrinks the subset for free; stochastic "
               "greedy matches lazy (micro_selection has the speed gap); "
               "re-selecting every 5 epochs cuts the near-storage scan "
               "volume ~5x at unchanged wall time in this GPU-bound "
               "regime (the FPGA phase was hidden by overlap anyway); "
               "loss-top-k pays a full-dataset host scan every epoch.\n";
  return 0;
}
