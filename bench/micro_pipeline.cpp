// Google-benchmark microbenchmarks for the two performance models behind
// core::PerformanceModel on the paper's six Table-1 dataset workloads:
//
//   BM_AnalyticEpoch/<i>  closed-form overlapped epoch pricing (a handful
//                         of arithmetic primitive calls);
//   BM_EventEpoch/<i>     the discrete-event DeviceGraph probe that prices
//                         the same epoch by actually scheduling every
//                         batch through the component pipeline.
//
// The interesting number is the gap: the event model buys contention
// fidelity with simulation work proportional to batches-per-epoch, which
// is why the trainers memoize its result per demand shape.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "nessa/core/perf_model.hpp"
#include "nessa/data/registry.hpp"
#include "nessa/nn/model.hpp"
#include "nessa/smartssd/device.hpp"
#include "nessa/smartssd/pipeline_sim.hpp"

using namespace nessa;

namespace {

const std::vector<std::string>& paper_datasets() {
  static const std::vector<std::string> names = {
      "CIFAR-10",  "SVHN",         "CINIC-10",
      "CIFAR-100", "TinyImageNet", "ImageNet-100"};
  return names;
}

/// Paper-default NeSSA epoch demand at 30% subset (mirrors the trainers).
core::NessaEpochDemand paper_demand(const std::string& dataset) {
  const auto& info = data::dataset_info(dataset);
  const auto spec = nn::model_spec(info.paper_network);
  core::NessaEpochDemand d;
  d.pool_records = info.paper_train_size;
  d.subset_records = info.paper_train_size * 3 / 10;
  d.record_bytes = info.stored_bytes_per_sample;
  const auto macs_per_sample = static_cast<std::uint64_t>(
      spec.paper_gflops_per_sample * 1e9 / 2.0);
  d.forward_macs =
      static_cast<std::uint64_t>(d.pool_records) * macs_per_sample;
  d.selection_ops = static_cast<std::uint64_t>(d.pool_records) * 500;
  d.train_gflops_per_sample = spec.paper_gflops_per_sample;
  d.batch_size = 128;
  d.weight_feedback = true;
  d.feedback_bytes =
      static_cast<std::uint64_t>(spec.paper_params_millions * 1e6);
  return d;
}

smartssd::EpochWorkload to_workload(const core::NessaEpochDemand& d) {
  smartssd::EpochWorkload w;
  w.pool_records = d.pool_records;
  w.subset_records = d.subset_records;
  w.record_bytes = d.record_bytes;
  w.macs_per_record = d.forward_macs / d.pool_records;
  w.selection_ops = d.selection_ops;
  w.train_gflops_per_sample = d.train_gflops_per_sample;
  w.batch_size = d.batch_size;
  w.feedback_bytes = d.feedback_bytes;
  return w;
}

void BM_AnalyticEpoch(benchmark::State& state) {
  const auto& dataset = paper_datasets()[
      static_cast<std::size_t>(state.range(0))];
  const auto demand = paper_demand(dataset);
  smartssd::SystemConfig cfg;
  smartssd::SmartSsdSystem system(cfg);
  auto model = core::make_performance_model(core::PerfModelKind::kAnalytic);
  util::SimTime last = 0;
  for (auto _ : state) {
    const auto cost = model->nessa_epoch(system, demand);
    last = cost.total();
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(dataset);
  state.counters["epoch_s"] = util::to_seconds(last);
}
BENCHMARK(BM_AnalyticEpoch)->DenseRange(0, 5);

void BM_EventEpoch(benchmark::State& state) {
  const auto& dataset = paper_datasets()[
      static_cast<std::size_t>(state.range(0))];
  const auto workload = to_workload(paper_demand(dataset));
  smartssd::SystemConfig cfg;
  // The probe the event model runs per unseen demand shape: 5 epochs of
  // batch-granular scheduling on a fresh DeviceGraph (no memoization here —
  // this measures the raw simulation throughput).
  util::SimTime last = 0;
  for (auto _ : state) {
    const auto trace = smartssd::simulate_pipeline(cfg, workload, 5, smartssd::PipelineOptions{});
    last = trace.steady_epoch_time;
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(dataset);
  state.counters["epoch_s"] = util::to_seconds(last);
}
BENCHMARK(BM_EventEpoch)->DenseRange(0, 5);

/// Fleet-shaped stress case: the largest paper workload at an 8x smaller
/// batch over twice the epochs, i.e. ~16x the event count of
/// BM_EventEpoch/5. This is the regime the slab arena + calendar queue are
/// built for — per-event cost must not grow with the pending-set size.
void BM_EventEpochFleet(benchmark::State& state) {
  auto workload = to_workload(paper_demand("ImageNet-100"));
  workload.batch_size = 16;
  smartssd::SystemConfig cfg;
  for (auto _ : state) {
    const auto trace = smartssd::simulate_pipeline(cfg, workload, 10, smartssd::PipelineOptions{});
    benchmark::DoNotOptimize(trace.steady_epoch_time);
  }
}
BENCHMARK(BM_EventEpochFleet);

}  // namespace
