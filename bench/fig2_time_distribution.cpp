// Figure 2: fraction of training time spent on data movement for MNIST,
// CIFAR-10, CIFAR-100 and ImageNet-100 on a V100. Paper endpoints: 5.4 %
// (MNIST, 0.5 KB images) rising to 40.4 % (ImageNet-100, 126 KB images).
#include <iostream>

#include "nessa/data/registry.hpp"
#include "nessa/smartssd/gpu_model.hpp"
#include "nessa/smartssd/loader_sim.hpp"
#include "nessa/util/table.hpp"
#include "nessa/util/units.hpp"

using namespace nessa;

namespace {

/// Forward GFLOPs of the profiled network at the dataset's native input
/// resolution (ResNet-18 for the small-image datasets, ResNet-50 for
/// ImageNet-100 per Table 1).
double profile_gflops(const std::string& dataset) {
  if (dataset == "MNIST") return 0.43;         // ResNet-18 @ 28x28
  if (dataset == "ImageNet-100") return 4.09;  // ResNet-50 @ 224x224
  return 0.56;                                 // ResNet-18 @ 32x32
}

}  // namespace

int main() {
  const auto& gpu = smartssd::gpu_spec("V100");
  std::cout << "=== Figure 2: time distribution of training (V100) ===\n\n";
  util::Table table;
  table.set_header({"dataset", "train size", "KB/image", "data (s)",
                    "compute (s)", "data share (%)", "DES stall (%)"});
  for (const std::string name :
       {"MNIST", "CIFAR-10", "CIFAR-100", "ImageNet-100"}) {
    const auto& info = data::dataset_info(name);
    const auto cost = smartssd::epoch_cost(
        gpu, info.paper_train_size, info.stored_bytes_per_sample,
        profile_gflops(name), 128);
    // Structural cross-check: the pipelined loader simulation's GPU-stall
    // share for the same workload.
    const auto loader = smartssd::simulate_input_pipeline(
        smartssd::LoaderConfig{}, gpu, info.paper_train_size,
        info.stored_bytes_per_sample, profile_gflops(name), 128);
    table.add_row(
        {name, util::Table::num(info.paper_train_size),
         util::Table::num(info.stored_bytes_per_sample / 1000.0, 1),
         util::Table::num(util::to_seconds(cost.data_time), 1),
         util::Table::num(util::to_seconds(cost.compute_time), 1),
         util::Table::pct(cost.data_fraction()),
         util::Table::pct(loader.stall_fraction())});
  }
  table.print(std::cout);
  std::cout << "\npaper endpoints: MNIST 5.4 % -> ImageNet-100 40.4 %. The "
               "shape (data share grows with image size) is the claim under "
               "reproduction.\n";
  return 0;
}
