// Figure 4: average per-epoch training time on CIFAR-10 / ResNet-20 for
// NeSSA, CRAIG [20], K-Centers [17], and full-data training — simulated at
// paper scale (50k x 3 KB images, V100 GPU, SmartSSD selection for NeSSA,
// host-CPU selection for the baselines).
//
// Paper headline (averaged across datasets): NeSSA is 5.37x faster than
// full-data training, 4.3x faster than CRAIG, 8.1x faster than K-Centers.
#include <iostream>

#include "bench_common.hpp"

using namespace nessa;

int main() {
  bench::BenchConfig cfg;
  cfg.epochs = bench::env_size_t("NESSA_BENCH_EPOCHS", 20);
  bench::print_banner("Figure 4: per-epoch time, CIFAR-10 / ResNet-20", cfg);

  auto c = bench::make_case("CIFAR-10", cfg);
  auto& inputs = c.bind();

  core::NessaConfig nessa_cfg = bench::scaled_nessa(0.30, cfg);

  smartssd::SmartSsdSystem s1, s2, s3, s4;
  auto nessa = bench::nessa_run(inputs, nessa_cfg, s1);
  std::cerr << "[fig4] nessa done\n";
  auto craig = core::run_craig(inputs, 0.30, s2);
  std::cerr << "[fig4] craig done\n";
  auto kcenter = core::run_kcenter(inputs, 0.30, s3);
  std::cerr << "[fig4] k-centers done\n";
  auto full = bench::full_run(inputs, s4);
  std::cerr << "[fig4] full done\n";

  auto seconds = [](util::SimTime t) { return util::to_seconds(t); };

  util::Table table;
  table.set_header({"system", "epoch time (s)", "NeSSA speedup",
                    "scan+select (s)", "train+xfer (s)"});
  auto add = [&](const std::string& name, const core::RunResult& r) {
    util::SimTime fpga = 0, gpu = 0;
    for (const auto& e : r.epochs) {
      fpga += e.cost.fpga_phase();
      gpu += e.cost.gpu_phase();
    }
    fpga /= static_cast<util::SimTime>(r.epochs.size());
    gpu /= static_cast<util::SimTime>(r.epochs.size());
    table.add_row(
        {name, util::Table::num(seconds(r.mean_epoch_time), 2),
         util::Table::num(static_cast<double>(r.mean_epoch_time) /
                          static_cast<double>(nessa.mean_epoch_time), 2) +
             "x",
         util::Table::num(seconds(fpga), 2),
         util::Table::num(seconds(gpu), 2)});
  };
  add("NeSSA (SmartSSD)", nessa);
  add("CRAIG (CPU select)", craig);
  add("K-Centers (CPU select)", kcenter);
  add("All data", full);
  table.print(std::cout);

  std::cout << "\ndata movement: full " << full.interconnect_bytes / 1'000'000
            << " MB vs NeSSA " << nessa.interconnect_bytes / 1'000'000
            << " MB over the interconnect ("
            << util::Table::num(
                   static_cast<double>(full.interconnect_bytes) /
                       static_cast<double>(nessa.interconnect_bytes), 2)
            << "x reduction; paper average 3.47x)\n";
  std::cout << "paper shape: NeSSA < CRAIG < All data < K-Centers in "
               "per-epoch time.\n\n";

  // The paper's 5.37x / 3.47x headlines are *averages across datasets*;
  // reproduce them the same way.
  util::Table across("NeSSA vs full data, every Table-1 dataset");
  across.set_header({"dataset", "full epoch (s)", "NeSSA epoch (s)",
                     "speedup", "data reduction"});
  double speedup_sum = 0.0, reduction_sum = 0.0;
  std::size_t rows = 0;
  for (const auto& info : data::paper_datasets()) {
    auto dc = bench::make_case(info.name, cfg);
    auto& dinputs = dc.bind();
    smartssd::SmartSsdSystem sa, sb;
    auto dfull = bench::full_run(dinputs, sa);
    auto dnessa = bench::nessa_run(dinputs, bench::scaled_nessa(0.30, cfg), sb);
    const double speedup = static_cast<double>(dfull.mean_epoch_time) /
                           static_cast<double>(dnessa.mean_epoch_time);
    const double reduction =
        static_cast<double>(dfull.interconnect_bytes) /
        static_cast<double>(dnessa.interconnect_bytes);
    speedup_sum += speedup;
    reduction_sum += reduction;
    ++rows;
    across.add_row(
        {info.name, util::Table::num(seconds(dfull.mean_epoch_time), 2),
         util::Table::num(seconds(dnessa.mean_epoch_time), 2),
         util::Table::num(speedup, 2) + "x",
         util::Table::num(reduction, 2) + "x"});
    std::cerr << "[fig4] " << info.name << " done\n";
  }
  across.print(std::cout);
  std::cout << "\naverage across datasets: "
            << util::Table::num(speedup_sum / static_cast<double>(rows), 2)
            << "x speedup (paper 5.37x), "
            << util::Table::num(reduction_sum / static_cast<double>(rows), 2)
            << "x data-movement reduction (paper 3.47x)\n";
  return 0;
}
