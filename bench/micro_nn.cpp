// Google-benchmark microbenchmarks for the numeric substrate: GEMM kernel
// variants, the im2col convolution, batch-norm, quantized vs float MLP
// inference, and the end-to-end per-batch training step.
#include <benchmark/benchmark.h>

#include "nessa/nn/conv.hpp"
#include "nessa/nn/loss.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/quant/qmodel.hpp"
#include "nessa/tensor/ops.hpp"
#include "nessa/util/rng.hpp"

using namespace nessa;

namespace {

tensor::Tensor random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t({r, c});
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.gaussian());
  }
  return t;
}

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_matrix(n, n, 1);
  auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    auto c = tensor::matmul_naive(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNaive)->Range(32, 256);

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_matrix(n, n, 1);
  auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b, /*parallel=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmBlocked)->Range(32, 512);

void BM_GemmParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_matrix(n, n, 1);
  auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b, /*parallel=*/true);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmParallel)->Range(128, 512);

void BM_PairwiseSqDists(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_matrix(n, 16, 3);
  for (auto _ : state) {
    auto d = tensor::pairwise_sq_dists(x, false);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_PairwiseSqDists)->Range(64, 1024);

void BM_Conv2dForward(benchmark::State& state) {
  util::Rng rng(4);
  nn::Conv2d conv({3, 16, 16}, 16, 3, 1, 1, rng);
  auto x = random_matrix(32, 3 * 256, 5);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  util::Rng rng(6);
  nn::Conv2d conv({3, 16, 16}, 16, 3, 1, 1, rng);
  auto x = random_matrix(32, 3 * 256, 7);
  auto y = conv.forward(x, true);
  auto g = random_matrix(32, 16 * 256, 8);
  for (auto _ : state) {
    auto dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_BatchNormForwardTrain(benchmark::State& state) {
  nn::BatchNorm2d bn({16, 16, 16});
  auto x = random_matrix(32, 16 * 256, 9);
  for (auto _ : state) {
    auto y = bn.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForwardTrain);

void BM_MlpTrainStep(benchmark::State& state) {
  util::Rng rng(10);
  auto model = nn::Sequential::mlp({64, 128, 64, 10}, rng);
  nn::Sgd sgd;
  nn::SoftmaxCrossEntropy loss_fn;
  auto x = random_matrix(128, 64, 11);
  std::vector<nn::Label> y(128);
  for (std::size_t i = 0; i < 128; ++i) {
    y[i] = static_cast<nn::Label>(i % 10);
  }
  for (auto _ : state) {
    model.zero_grads();
    auto loss = loss_fn.forward(model.forward(x, true), y);
    model.backward(loss_fn.backward(loss, y));
    sgd.step(model.params());
    benchmark::DoNotOptimize(loss.mean_loss);
  }
}
BENCHMARK(BM_MlpTrainStep);

void BM_MiniResnetTrainStep(benchmark::State& state) {
  util::Rng rng(12);
  auto model = nn::build_mini_resnet({3, 8, 8}, 8, 10, rng);
  nn::Sgd sgd;
  nn::SoftmaxCrossEntropy loss_fn;
  auto x = random_matrix(32, 3 * 64, 13);
  std::vector<nn::Label> y(32);
  for (std::size_t i = 0; i < 32; ++i) {
    y[i] = static_cast<nn::Label>(i % 10);
  }
  for (auto _ : state) {
    model.zero_grads();
    auto loss = loss_fn.forward(model.forward(x, true), y);
    model.backward(loss_fn.backward(loss, y));
    sgd.step(model.params());
    benchmark::DoNotOptimize(loss.mean_loss);
  }
}
BENCHMARK(BM_MiniResnetTrainStep);

void BM_QuantizedVsFloat_Float(benchmark::State& state) {
  util::Rng rng(14);
  auto model = nn::Sequential::mlp({128, 256, 10}, rng);
  auto x = random_matrix(256, 128, 15);
  for (auto _ : state) {
    auto y = model.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_QuantizedVsFloat_Float);

void BM_QuantizedVsFloat_Int8(benchmark::State& state) {
  util::Rng rng(14);
  auto model = nn::Sequential::mlp({128, 256, 10}, rng);
  auto qmodel = quant::QuantizedMlp::from_model(model);
  auto x = random_matrix(256, 128, 15);
  for (auto _ : state) {
    auto y = qmodel.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_QuantizedVsFloat_Int8);

}  // namespace
