// Extension (paper §5 future work): scaling NeSSA across multiple
// SmartSSDs with GreeDi distributed selection. Reports the simulated epoch
// breakdown per device count on the ImageNet-100 workload — the scan-heavy
// regime where a single FPGA is the bottleneck.
#include <iostream>

#include "bench_common.hpp"

using namespace nessa;

int main() {
  bench::BenchConfig cfg;
  cfg.epochs = bench::env_size_t("NESSA_BENCH_EPOCHS", 12);
  bench::print_banner(
      "Extension: multi-SmartSSD scaling (GreeDi), ImageNet-100", cfg);

  auto c = bench::make_case("ImageNet-100", cfg);
  auto& inputs = c.bind();

  core::NessaConfig nessa_cfg = bench::scaled_nessa(0.30, cfg);
  nessa_cfg.dynamic_sizing = false;
  nessa_cfg.min_subset_fraction = 0.30;
  // Full-fidelity near-storage forward (no reduced-resolution proxy): the
  // regime where a single FPGA cannot keep up with a ResNet-50-scale scan
  // and sharding across SmartSSDs is what makes NeSSA viable at all.
  nessa_cfg.selection_proxy_factor = 1.0;

  util::Table table;
  table.set_header({"devices", "acc (%)", "scan (s)", "select (s)",
                    "fpga phase (s)", "epoch (s)", "speedup vs 1"});
  double first_epoch_s = 0.0;
  for (std::size_t devices : {1u, 2u, 4u, 8u}) {
    smartssd::SmartSsdSystem sys;
    auto result = core::run_nessa_multi(inputs, nessa_cfg,
                                        core::MultiDeviceConfig{devices},
                                        sys);
    util::SimTime scan = 0, select = 0, fpga = 0;
    for (const auto& e : result.epochs) {
      scan += e.cost.storage_scan;
      select += e.cost.selection;
      fpga += e.cost.fpga_phase();
    }
    const auto n = static_cast<util::SimTime>(result.epochs.size());
    const double epoch_s = util::to_seconds(result.mean_epoch_time);
    if (devices == 1) first_epoch_s = epoch_s;
    table.add_row({util::Table::num(devices),
                   util::Table::pct(result.final_accuracy),
                   util::Table::num(util::to_seconds(scan / n), 2),
                   util::Table::num(util::to_seconds(select / n), 2),
                   util::Table::num(util::to_seconds(fpga / n), 2),
                   util::Table::num(epoch_s, 2),
                   util::Table::num(first_epoch_s / epoch_s, 2) + "x"});
    std::cerr << "[multidevice] " << devices << " devices done\n";
  }
  table.print(std::cout);
  std::cout << "\nshape: the FPGA phase (scan + quantized forward + local "
               "selection) divides across devices until the GPU phase "
               "becomes the critical path; accuracy is preserved by the "
               "GreeDi merge round.\n";
  return 0;
}
