// Google-benchmark microbenchmarks for the checkpoint/restore subsystem.
// The contract mirrors the fault seam's: a run with checkpointing DISABLED
// must price within noise (~2%) of the pre-checkpoint baselines (the
// BM_EventEpoch rows in BENCH_pipeline.json, the trainer probes here), and
// the enabled path's cost — state capture, payload encode, CRC, atomic
// write — is measured so regressions in the snapshot path show up.
//
//   BM_EventEpochNoCheckpoint      the event-model probe with no snapshot
//                                  hook — comparable to BM_EventEpoch/0;
//   BM_EventEpochCheckpointed      same simulation persisting a barrier
//                                  snapshot every epoch;
//   BM_TrainerNoCheckpoint         a short NeSSA run, checkpointing off;
//   BM_TrainerCheckpointEveryEpoch the same run snapshotting every epoch
//                                  (capture + encode + CRC + write+rename);
//   BM_SnapshotWrite/<bytes>       raw store throughput per payload size;
//   BM_SnapshotLoadLatest/<bytes>  verify-and-load of the newest snapshot.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <vector>

#include "bench_common.hpp"
#include "nessa/ckpt/store.hpp"
#include "nessa/data/synthetic.hpp"
#include "nessa/smartssd/pipeline_sim.hpp"

using namespace nessa;

namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / "nessa_bench_ckpt" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

const data::Dataset& bench_dataset() {
  static const data::Dataset ds = [] {
    data::SyntheticConfig cfg;
    cfg.num_classes = 4;
    cfg.train_size = 400;
    cfg.test_size = 100;
    cfg.feature_dim = 16;
    cfg.seed = 11;
    return data::make_synthetic(cfg);
  }();
  return ds;
}

core::PipelineInputs trainer_inputs() {
  core::PipelineInputs in;
  in.dataset = &bench_dataset();
  in.info = data::dataset_info("CIFAR-10");
  in.model = nn::model_spec("ResNet-20");
  in.train.epochs = 3;
  in.train.batch_size = 32;
  in.train.seed = 3;
  return in;
}

core::NessaConfig bench_nessa() {
  core::NessaConfig cfg;
  cfg.subset_fraction = 0.3;
  cfg.partition_quota = 32;
  cfg.drop_interval_epochs = 2;
  cfg.loss_window_epochs = 2;
  return cfg;
}

void BM_EventEpochNoCheckpoint(benchmark::State& state) {
  const smartssd::EpochWorkload workload;
  smartssd::SystemConfig cfg;
  util::SimTime last = 0;
  for (auto _ : state) {
    const auto trace = smartssd::simulate_pipeline(cfg, workload, 5, smartssd::PipelineOptions{});
    last = trace.steady_epoch_time;
    benchmark::DoNotOptimize(last);
  }
  state.counters["epoch_s"] = util::to_seconds(last);
}
BENCHMARK(BM_EventEpochNoCheckpoint);

void BM_EventEpochCheckpointed(benchmark::State& state) {
  const auto dir = scratch_dir("event");
  core::RunConfig rc;
  rc.pipeline_epochs = 5;
  rc.checkpoint.dir = dir.string();
  rc.checkpoint.keep = 2;
  util::SimTime last = 0;
  for (auto _ : state) {
    const auto trace = core::simulate(rc);
    last = trace.steady_epoch_time;
    benchmark::DoNotOptimize(last);
  }
  state.counters["epoch_s"] = util::to_seconds(last);
  fs::remove_all(dir);
}
BENCHMARK(BM_EventEpochCheckpointed);

void BM_TrainerNoCheckpoint(benchmark::State& state) {
  const auto inputs = trainer_inputs();
  double acc = 0.0;
  for (auto _ : state) {
    smartssd::SmartSsdSystem sys;
    const auto run = bench::nessa_run(inputs, bench_nessa(), sys);
    acc = run.final_accuracy;  // kept live by the counter below
  }
  state.counters["final_acc"] = acc;
}
BENCHMARK(BM_TrainerNoCheckpoint)->Unit(benchmark::kMillisecond);

void BM_TrainerCheckpointEveryEpoch(benchmark::State& state) {
  const auto dir = scratch_dir("trainer");
  auto inputs = trainer_inputs();
  inputs.checkpoint.dir = dir.string();
  inputs.checkpoint.keep = 2;
  double acc = 0.0;
  for (auto _ : state) {
    smartssd::SmartSsdSystem sys;
    const auto run = bench::nessa_run(inputs, bench_nessa(), sys);
    acc = run.final_accuracy;  // kept live by the counter below
  }
  state.counters["final_acc"] = acc;
  fs::remove_all(dir);
}
BENCHMARK(BM_TrainerCheckpointEveryEpoch)->Unit(benchmark::kMillisecond);

void BM_SnapshotWrite(benchmark::State& state) {
  const auto dir = scratch_dir("write");
  ckpt::CheckpointConfig cfg;
  cfg.dir = dir.string();
  cfg.keep = 2;
  ckpt::Writer writer(cfg);
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0x5a);
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    writer.write(++epoch, payload);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotWrite)->Arg(64 << 10)->Arg(1 << 20);

void BM_SnapshotLoadLatest(benchmark::State& state) {
  const auto dir = scratch_dir("load");
  ckpt::CheckpointConfig cfg;
  cfg.dir = dir.string();
  ckpt::Writer writer(cfg);
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0x5a);
  for (std::uint64_t e = 1; e <= 3; ++e) writer.write(e, payload);
  ckpt::Reader reader(dir.string());
  for (auto _ : state) {
    const auto snap = reader.load_latest();
    benchmark::DoNotOptimize(snap.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotLoadLatest)->Arg(64 << 10)->Arg(1 << 20);

}  // namespace
