// Figure 5: test accuracy over the training process, NeSSA (solid in the
// paper) vs full-data training (dotted), for every Table-1 dataset. The
// paper's claim: NeSSA is closer to its converged accuracy within the
// first ~15 % of epochs than full-data training is to its own.
#include <iostream>

#include "bench_common.hpp"

using namespace nessa;

int main() {
  bench::BenchConfig cfg;
  bench::print_banner("Figure 5: accuracy over training, NeSSA vs full data",
                      cfg);

  for (const auto& info : data::paper_datasets()) {
    auto c = bench::make_case(info.name, cfg);
    auto& inputs = c.bind();

    smartssd::SmartSsdSystem s_full, s_nessa;
    auto full = bench::full_run(inputs, s_full);
    core::NessaConfig nessa_cfg = bench::scaled_nessa(0.35, cfg);
    auto nessa = bench::nessa_run(inputs, nessa_cfg, s_nessa);

    util::Table table(info.name + " (accuracy %, per epoch)");
    table.set_header({"epoch", "NeSSA", "All data"});
    for (std::size_t e = 0; e < full.epochs.size(); ++e) {
      table.add_row({util::Table::num(e),
                     util::Table::pct(nessa.epochs[e].test_accuracy),
                     util::Table::pct(full.epochs[e].test_accuracy)});
    }
    table.print(std::cout);

    // Early-convergence metric: accuracy reached after 15 % of the budget,
    // as a fraction of each run's own final accuracy.
    const std::size_t early =
        std::max<std::size_t>(1, full.epochs.size() * 15 / 100);
    const double nessa_frac =
        nessa.epochs[early - 1].test_accuracy / nessa.final_accuracy;
    const double full_frac =
        full.epochs[early - 1].test_accuracy / full.final_accuracy;
    std::cout << "early convergence after " << early << " epochs: NeSSA at "
              << util::Table::pct(nessa_frac) << " % of its final vs "
              << util::Table::pct(full_frac) << " % for all data\n\n";
    std::cerr << "[fig5] " << info.name << " done\n";
  }
  std::cout << "paper shape: the NeSSA series sits above the all-data "
               "series early in training on every dataset.\n";
  return 0;
}
