// Google-benchmark microbenchmarks for the selection kernels and the
// quantized forward path: the §3.1 complexity claims (lazy and stochastic
// greedy vs naive), the §3.2.3 partitioning win, and the §3.2.1
// quantization win.
#include <benchmark/benchmark.h>

#include <random>

#include "nessa/nn/model.hpp"
#include "nessa/quant/qmodel.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/selection/greedy.hpp"
#include "nessa/selection/kcenter.hpp"
#include "nessa/util/rng.hpp"

using namespace nessa;

namespace {

tensor::Tensor random_embeddings(std::size_t n, std::size_t d,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t({n, d});
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.gaussian());
  }
  return t;
}

// Greedy benchmarks take (n, parallel) argument pairs: /<n>/0 runs the
// serial engine, /<n>/1 runs the same reduction on the global thread pool
// (identical results by construction — see docs/performance.md).

void BM_FacilityLocationBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool parallel = state.range(1) != 0;
  auto emb = random_embeddings(n, 10, 1);
  for (auto _ : state) {
    auto fl = selection::FacilityLocation::from_embeddings(emb, parallel);
    benchmark::DoNotOptimize(fl.ground_size());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_FacilityLocationBuild)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->Complexity();

// Large-N regime (the FPGA-chunk sizes where the Gram matrix and coverage
// vector stop fitting in cache): the column-tiled kernels engage at
// N >= FacilityLocation::kTiledThreshold with bit-identical results.

void BM_FacilityLocationBuildLarge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto emb = random_embeddings(n, 10, 1);
  for (auto _ : state) {
    auto fl = selection::FacilityLocation::from_embeddings(emb, false);
    benchmark::DoNotOptimize(fl.ground_size());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_FacilityLocationBuildLarge)->Arg(4096)->Arg(8192);

selection::FacilityLocation large_similarity(std::size_t n,
                                             std::uint64_t seed) {
  tensor::Tensor s({n, n});
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  for (float& x : s.flat()) x = dist(rng);
  return selection::FacilityLocation::from_similarity(std::move(s));
}

/// One full-ground-set gain scan (the per-round cost of naive greedy),
/// candidate at a time — re-fetches the coverage vector once per candidate.
void BM_GainScanPerCandidate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto fl = large_similarity(n, 9);
  auto st = fl.empty_state();
  for (std::size_t j = 0; j < 4; ++j) fl.add(st, j * (n / 4) + 1);
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += fl.marginal_gain(st, j);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GainScanPerCandidate)->Arg(4096)->Arg(8192);

/// The same scan through the batched column-tiled kernel: one coverage tile
/// serves 16 candidates. Results are bit-identical to the per-candidate
/// scan; only the memory traffic differs.
void BM_GainScanBatched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto fl = large_similarity(n, 9);
  auto st = fl.empty_state();
  for (std::size_t j = 0; j < 4; ++j) fl.add(st, j * (n / 4) + 1);
  double gains[16];
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t j0 = 0; j0 < n; j0 += 16) {
      const std::size_t j1 = std::min(n, j0 + 16);
      fl.marginal_gains(st, j0, j1, gains);
      for (std::size_t j = j0; j < j1; ++j) sum += gains[j - j0];
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GainScanBatched)->Arg(4096)->Arg(8192);

void BM_NaiveGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool parallel = state.range(1) != 0;
  auto fl = selection::FacilityLocation::from_embeddings(
      random_embeddings(n, 10, 2));
  for (auto _ : state) {
    auto result = selection::naive_greedy(fl, n / 10, parallel);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_NaiveGreedy)->ArgsProduct({{64, 256, 1024}, {0, 1}});

void BM_LazyGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool parallel = state.range(1) != 0;
  auto fl = selection::FacilityLocation::from_embeddings(
      random_embeddings(n, 10, 2));
  for (auto _ : state) {
    auto result = selection::lazy_greedy(fl, n / 10, parallel);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_LazyGreedy)->ArgsProduct({{64, 256, 512, 1024}, {0, 1}});

void BM_StochasticGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool parallel = state.range(1) != 0;
  auto fl = selection::FacilityLocation::from_embeddings(
      random_embeddings(n, 10, 2));
  util::Rng rng(3);
  for (auto _ : state) {
    auto result =
        selection::stochastic_greedy(fl, n / 10, rng, 0.1, parallel);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_StochasticGreedy)->ArgsProduct({{64, 256, 512}, {0, 1}});

void BM_KCenterGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto pts = random_embeddings(n, 10, 4);
  for (auto _ : state) {
    auto result = selection::kcenter_greedy(pts, n / 10);
    benchmark::DoNotOptimize(result.max_radius);
  }
}
BENCHMARK(BM_KCenterGreedy)->Range(64, 1024);

/// §3.2.3: monolithic vs partition-chunked selection at equal budget.
void BM_SelectMonolithic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto emb = random_embeddings(n, 10, 5);
  std::vector<std::int32_t> labels(n, 0);
  selection::DriverConfig cfg;
  cfg.per_class = false;
  cfg.partition_quota = 0;
  for (auto _ : state) {
    auto result = selection::select_coreset(emb, labels, {}, n / 5, cfg);
    benchmark::DoNotOptimize(result.indices.data());
  }
}
BENCHMARK(BM_SelectMonolithic)->Range(256, 2048);

void BM_SelectPartitioned(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto emb = random_embeddings(n, 10, 5);
  std::vector<std::int32_t> labels(n, 0);
  selection::DriverConfig cfg;
  cfg.per_class = false;
  cfg.partition_quota = 64;
  for (auto _ : state) {
    auto result = selection::select_coreset(emb, labels, {}, n / 5, cfg);
    benchmark::DoNotOptimize(result.indices.data());
  }
}
BENCHMARK(BM_SelectPartitioned)->Range(256, 2048);

/// §3.2.1: float vs int8 forward pass of the selection model.
void BM_FloatForward(benchmark::State& state) {
  util::Rng rng(6);
  auto model = nn::Sequential::mlp({64, 256, 128, 10}, rng);
  auto x = random_embeddings(128, 64, 7);
  for (auto _ : state) {
    auto y = model.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FloatForward);

void BM_QuantizedForward(benchmark::State& state) {
  util::Rng rng(6);
  auto model = nn::Sequential::mlp({64, 256, 128, 10}, rng);
  auto qmodel = quant::QuantizedMlp::from_model(model);
  auto x = random_embeddings(128, 64, 7);
  for (auto _ : state) {
    auto y = qmodel.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_QuantizedForward);

void BM_QuantizeRefresh(benchmark::State& state) {
  util::Rng rng(8);
  auto model = nn::Sequential::mlp({64, 256, 128, 10}, rng);
  auto qmodel = quant::QuantizedMlp::from_model(model);
  for (auto _ : state) {
    qmodel.refresh_from(model);
    benchmark::DoNotOptimize(qmodel.payload_bytes());
  }
}
BENCHMARK(BM_QuantizeRefresh);

}  // namespace
