// Shared configuration for the table/figure reproduction benches.
//
// Environment knobs (all optional):
//   NESSA_BENCH_EPOCHS  substrate training epochs per run   (default 30)
//   NESSA_BENCH_SCALE   substrate size as a fraction of the
//                       paper train-set size                (default 0.03)
//   NESSA_BENCH_SEED    RNG seed                            (default 42)
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "nessa/core/run.hpp"
#include "nessa/util/table.hpp"
#include "nessa/util/units.hpp"

namespace nessa::bench {

inline std::size_t env_size_t(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

inline double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) return parsed;
  }
  return fallback;
}

struct BenchConfig {
  std::size_t epochs = env_size_t("NESSA_BENCH_EPOCHS", 30);
  double scale = env_double("NESSA_BENCH_SCALE", 0.03);
  std::uint64_t seed = env_size_t("NESSA_BENCH_SEED", 42);
};

/// Build pipeline inputs for a paper dataset at bench scale.
/// The dataset pointer in `inputs` is rebound via bind() so BenchCase stays
/// safely movable.
struct BenchCase {
  data::Dataset dataset;
  core::PipelineInputs inputs;

  /// Point inputs.dataset at this case's dataset; call after any move.
  core::PipelineInputs& bind() {
    inputs.dataset = &dataset;
    return inputs;
  }
};

inline BenchCase make_case(const std::string& dataset_name,
                           const BenchConfig& cfg) {
  BenchCase c{data::make_substrate_dataset(data::dataset_info(dataset_name),
                                           cfg.scale, 0, cfg.seed),
              {}};
  c.inputs.info = data::dataset_info(dataset_name);
  c.inputs.model = nn::model_spec(c.inputs.info.paper_network);
  c.inputs.train.epochs = cfg.epochs;
  c.inputs.train.batch_size = 128;
  c.inputs.train.seed = cfg.seed;
  return c;
}

/// NessaConfig with the paper's cadences rescaled to the bench's epoch
/// budget (the paper drops every 20 of 200 epochs with a 5-epoch loss
/// window, and partitions with mini-batch-sized chunks at 50k-sample scale;
/// the same fractions are applied here).
inline core::NessaConfig scaled_nessa(double fraction,
                                      const BenchConfig& cfg) {
  core::NessaConfig nessa;
  nessa.subset_fraction = fraction;
  nessa.drop_interval_epochs = std::max<std::size_t>(3, cfg.epochs / 4);
  nessa.loss_window_epochs = std::max<std::size_t>(2, cfg.epochs / 40);
  nessa.partition_quota = 8;
  return nessa;
}

/// Drivers over the unified core::run dispatcher, staging the inputs' run
/// knobs the way the retired piecewise entry points did implicitly.
inline core::RunResult full_run(const core::PipelineInputs& in,
                                smartssd::SmartSsdSystem& sys) {
  core::RunConfig rc;
  rc.pipeline = core::PipelineKind::kFull;
  rc.train = in.train;
  rc.perf_model = in.perf_model;
  rc.fault_plan = in.fault_plan;
  rc.checkpoint = in.checkpoint;
  return core::run(in, rc, sys);
}

inline core::RunResult nessa_run(const core::PipelineInputs& in,
                                 const core::NessaConfig& cfg,
                                 smartssd::SmartSsdSystem& sys) {
  core::RunConfig rc;
  rc.pipeline = core::PipelineKind::kNessa;
  rc.train = in.train;
  rc.perf_model = in.perf_model;
  rc.fault_plan = in.fault_plan;
  rc.checkpoint = in.checkpoint;
  rc.nessa = cfg;
  rc.parallelism = cfg.parallelism;
  return core::run(in, rc, sys);
}

inline void print_banner(const std::string& what, const BenchConfig& cfg) {
  std::cout << "=== " << what << " ===\n"
            << "(substrate scale " << cfg.scale << ", " << cfg.epochs
            << " epochs, seed " << cfg.seed
            << "; see EXPERIMENTS.md for paper-vs-measured discussion)\n\n";
}

}  // namespace nessa::bench
