// Figure 1: per-epoch ImageNet-1k training time for a decade of image
// classification models on an NVIDIA A100. The paper's point is the
// exponential growth of per-epoch cost; we regenerate the series from the
// model zoo's published FLOP counts and the analytic A100 model.
#include <iostream>

#include "nessa/smartssd/gpu_model.hpp"
#include "nessa/util/table.hpp"
#include "nessa/util/units.hpp"

using namespace nessa;

int main() {
  constexpr std::size_t kImageNet1k = 1'281'167;  // ILSVRC-2012 train size
  constexpr std::uint64_t kBytesPerImage = 110'000;  // avg JPEG size
  const auto& gpu = smartssd::gpu_spec("A100");

  std::cout << "=== Figure 1: per-epoch ImageNet-1k training time (A100) "
               "===\n\n";
  util::Table table;
  table.set_header({"model", "year", "fwd GFLOPs", "epoch time (min)",
                    "vs AlexNet"});
  double baseline_min = 0.0;
  for (const auto& m : smartssd::imagenet_model_zoo()) {
    const auto cost = smartssd::epoch_cost(gpu, kImageNet1k, kBytesPerImage,
                                           m.forward_gflops, 256);
    const double minutes = util::to_seconds(cost.total()) / 60.0;
    if (baseline_min == 0.0) baseline_min = minutes;
    table.add_row({m.name, util::Table::num(static_cast<std::size_t>(m.year)),
                   util::Table::num(m.forward_gflops, 1),
                   util::Table::num(minutes, 1),
                   util::Table::num(minutes / baseline_min, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nshape check: latest-generation models cost 1-2 orders of "
               "magnitude more per epoch than AlexNet, matching the paper's "
               "exponential-growth narrative.\n";
  return 0;
}
