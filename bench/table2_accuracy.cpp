// Table 2: NeSSA accuracy vs full-data accuracy and the final trained
// subset fraction, for all six paper datasets.
//
// Paper (200 epochs on real images):
//   CIFAR-10      92.02 / 90.17 / 28 %      CIFAR-100    70.98 / 69.23 / 38 %
//   SVHN          95.81 / 95.18 / 15 %      TinyImageNet 63.40 / 63.66 / 34 %
//   CINIC-10      81.49 / 80.26 / 30 %      ImageNet-100 84.60 / 83.76 / 28 %
// The reproduction claim is the *shape*: NeSSA within ~1-2 points of full-
// data accuracy while training on a small fraction.
#include <iostream>

#include "bench_common.hpp"
#include "nessa/util/stats.hpp"

using namespace nessa;

int main() {
  bench::BenchConfig cfg;
  // NESSA_BENCH_SEEDS > 1 repeats every run across seeds and reports
  // mean +/- stddev (slower; default is a single seed).
  const std::size_t seeds = bench::env_size_t("NESSA_BENCH_SEEDS", 1);
  bench::print_banner("Table 2: accuracy and subset size, all datasets", cfg);

  util::Table table;
  table.set_header({"Dataset", "All Data (%)", "NeSSA (%)", "gap (pts)",
                    "Subset (%)"});
  for (const auto& info : data::paper_datasets()) {
    util::RunningStats full_acc, nessa_acc, subset;
    for (std::size_t s = 0; s < seeds; ++s) {
      bench::BenchConfig seeded = cfg;
      seeded.seed = cfg.seed + s;
      auto c = bench::make_case(info.name, seeded);
      auto& inputs = c.bind();

      smartssd::SmartSsdSystem full_sys, nessa_sys;
      auto full = bench::full_run(inputs, full_sys);

      core::NessaConfig nessa_cfg = bench::scaled_nessa(0.40, seeded);
      nessa_cfg.min_subset_fraction = 0.12;
      auto nessa = bench::nessa_run(inputs, nessa_cfg, nessa_sys);
      full_acc.add(full.final_accuracy);
      nessa_acc.add(nessa.final_accuracy);
      subset.add(nessa.mean_subset_fraction);
    }
    auto fmt = [&](const util::RunningStats& st) {
      std::string out = util::Table::pct(st.mean());
      if (seeds > 1) out += " +/- " + util::Table::pct(st.stddev());
      return out;
    };
    table.add_row({info.name, fmt(full_acc), fmt(nessa_acc),
                   util::Table::num(
                       (full_acc.mean() - nessa_acc.mean()) * 100.0, 2),
                   fmt(subset)});
    std::cerr << "[table2] " << info.name << " done\n";
  }
  table.print(std::cout);
  std::cout << "\npaper shape: NeSSA trails full data by ~1-2 points while "
               "training on 15-38 % of the data.\n";
  return 0;
}
