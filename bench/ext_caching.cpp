// Extension: NeSSA vs host-cache systems (SHADE [22] / iCache [23] family).
// The paper's §1 argument: intelligent caching trims the input pipeline,
// but the gradient work and the first-epoch/miss traffic remain; near-
// storage *selection* removes both. Compared on CIFAR-10 (fits in an 8 GB
// cache — caching's best case) and ImageNet-100 (does not fit).
#include <iostream>

#include "bench_common.hpp"

using namespace nessa;

int main() {
  bench::BenchConfig cfg;
  cfg.epochs = bench::env_size_t("NESSA_BENCH_EPOCHS", 12);
  bench::print_banner("Extension: caching baselines vs NeSSA", cfg);

  smartssd::HostCache cache;  // 8 GB of decoded-sample cache

  for (const std::string name : {"CIFAR-10", "ImageNet-100"}) {
    auto c = bench::make_case(name, cfg);
    auto& inputs = c.bind();

    smartssd::SmartSsdSystem s1, s2, s3;
    auto full = bench::full_run(inputs, s1);
    auto cached = core::run_full_cached(inputs, cache, s2);
    auto nessa = bench::nessa_run(inputs, bench::scaled_nessa(0.30, cfg), s3);

    const auto& info = inputs.info;
    const double ds_gb = static_cast<double>(info.paper_train_size) *
                         info.stored_bytes_per_sample / 1e9;
    util::Table table(name + " (" + util::Table::num(ds_gb, 1) +
                      " GB on disk; cache 8 GB)");
    table.set_header({"system", "acc (%)", "epoch (s)",
                      "interconnect (GB/run)", "vs full"});
    auto add = [&](const std::string& system, const core::RunResult& r) {
      table.add_row(
          {system, util::Table::pct(r.final_accuracy),
           util::Table::num(util::to_seconds(r.mean_epoch_time), 2),
           util::Table::num(static_cast<double>(r.interconnect_bytes) / 1e9,
                            2),
           util::Table::num(static_cast<double>(full.mean_epoch_time) /
                                static_cast<double>(r.mean_epoch_time),
                            2) +
               "x"});
    };
    add("All data, no cache", full);
    add("All data + 8 GB cache", cached);
    add("NeSSA", nessa);
    table.print(std::cout);
    std::cout << "\n";
    std::cerr << "[caching] " << name << " done\n";
  }
  std::cout << "shape: caching shortens epochs only as far as the input "
               "pipeline's share; NeSSA shortens the gradient work itself "
               "and keeps winning even when the whole dataset is cached. "
               "(NeSSA's FPGA scores records from a reduced-resolution "
               "representation; see ext_multidevice for the full-fidelity "
               "regime.)\n";
  return 0;
}
