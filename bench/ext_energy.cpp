// Extension: energy accounting for the §2.2 power argument. Selection on
// the SmartSSD's 7.5 W FPGA vs host-CPU selection (~150 W) vs no selection
// at all (full data: every epoch's gradient work at GPU TDP).
#include <iostream>

#include "bench_common.hpp"
#include "nessa/core/energy.hpp"

using namespace nessa;

int main() {
  bench::BenchConfig cfg;
  cfg.epochs = bench::env_size_t("NESSA_BENCH_EPOCHS", 15);
  bench::print_banner("Extension: energy per training run, CIFAR-10", cfg);

  auto c = bench::make_case("CIFAR-10", cfg);
  auto& inputs = c.bind();
  const auto& gpu = smartssd::gpu_spec("V100");

  smartssd::SmartSsdSystem s1, s2, s3, s4;
  auto nessa = bench::nessa_run(inputs, bench::scaled_nessa(0.30, cfg), s1);
  auto craig = core::run_craig(inputs, 0.30, s2);
  auto kcenter = core::run_kcenter(inputs, 0.30, s3);
  auto full = bench::full_run(inputs, s4);

  auto e_nessa = core::estimate_energy(nessa, gpu, core::SelectionSite::kFpga);
  auto e_craig =
      core::estimate_energy(craig, gpu, core::SelectionSite::kHostCpu);
  auto e_kc =
      core::estimate_energy(kcenter, gpu, core::SelectionSite::kHostCpu);
  auto e_full = core::estimate_energy(full, gpu, core::SelectionSite::kNone);

  util::Table table;
  table.set_header({"system", "selection (kJ)", "transfer (kJ)", "GPU (kJ)",
                    "total (kJ)", "vs NeSSA"});
  auto add = [&](const std::string& name, const core::EnergyReport& e) {
    table.add_row({name, util::Table::num(e.selection_joules / 1e3),
                   util::Table::num(e.transfer_joules / 1e3),
                   util::Table::num(e.gpu_joules / 1e3),
                   util::Table::num(e.total() / 1e3),
                   util::Table::num(e.total() / e_nessa.total(), 2) + "x"});
  };
  add("NeSSA (FPGA select)", e_nessa);
  add("CRAIG (CPU select)", e_craig);
  add("K-Centers (CPU select)", e_kc);
  add("All data (no select)", e_full);
  table.print(std::cout);

  std::cout << "\nper-watt argument (paper §2.2): FPGA 7.5 W vs host CPU "
               "~150 W vs V100 300 W / A100 250 W / K1200 45 W. NeSSA's "
               "selection energy is a rounding error next to the GPU-hours "
               "it eliminates.\n";
  return 0;
}
