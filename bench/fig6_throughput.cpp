// Figure 6: effective data-transfer throughput between the FPGA and the
// on-board SSD for batch-128 record reads, per dataset. Paper anchor
// points: CIFAR-10 (3 KB records) 1.46 GB/s; ImageNet-100 (126 KB records)
// 2.28 GB/s; the theoretical P2P ceiling is 3 GB/s and the host-mediated
// path manages ~1.4 GB/s.
#include <iostream>

#include "nessa/data/registry.hpp"
#include "nessa/smartssd/device.hpp"
#include "nessa/util/table.hpp"

using namespace nessa;

int main() {
  std::cout << "=== Figure 6: FPGA <-> on-board SSD transfer throughput "
               "(batch = 128) ===\n\n";
  smartssd::SmartSsdSystem sys;

  util::Table table;
  table.set_header({"dataset", "KB/image", "P2P (GB/s)", "host path (GB/s)",
                    "P2P advantage"});
  auto add = [&](const std::string& name) {
    const auto& info = data::dataset_info(name);
    const double p2p = sys.p2p_bps(128, info.stored_bytes_per_sample) / 1e9;
    const double host =
        sys.conventional_path_bps(128 * info.stored_bytes_per_sample) / 1e9;
    table.add_row({name,
                   util::Table::num(info.stored_bytes_per_sample / 1000.0, 1),
                   util::Table::num(p2p), util::Table::num(host),
                   util::Table::num(p2p / host) + "x"});
  };
  add("MNIST");
  for (const auto& info : data::paper_datasets()) add(info.name);
  table.print(std::cout);

  std::cout << "\ntheoretical P2P ceiling: "
            << sys.config().p2p_bw_bps / 1e9
            << " GB/s; paper anchors: CIFAR-10 1.46 GB/s, ImageNet-100 "
               "2.28 GB/s; host-mediated ~1.4 GB/s (2.14x theoretical "
               "advantage).\n";
  std::cout << "shape: bigger records amortize per-command overhead and "
               "saturate the drive better — storage-assisted training pays "
               "off more as images grow.\n";
  return 0;
}
