// Extension: class-imbalanced data (real SVHN is heavily imbalanced; the
// paper's datasets are treated as balanced). The paper's selection is
// per-class, which guarantees every class a proportional budget; this bench
// shows what that buys: a *global* facility-location selection (no class
// structure) over-allocates to dense majority classes and starves the rare
// tail at small budgets, which shows up in rare-class recall first.
#include <iostream>

#include "bench_common.hpp"
#include "nessa/util/stats.hpp"
#include "nessa/core/train_utils.hpp"
#include "nessa/data/synthetic.hpp"
#include "nessa/nn/confusion.hpp"
#include "nessa/nn/optimizer.hpp"
#include "nessa/selection/baselines.hpp"
#include "nessa/selection/drivers.hpp"
#include "nessa/nn/embedding.hpp"

using namespace nessa;

namespace {

struct Outcome {
  double accuracy = 0.0;
  double macro_recall = 0.0;
  double rare_recall = 0.0;  ///< mean recall of the 3 rarest classes
};

enum class Policy { kFull, kRandom, kPerClassFl, kGlobalFl };

Outcome train_and_score(const data::Dataset& ds, std::size_t epochs,
                        double fraction, Policy policy,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  auto model = nn::Sequential::mlp(
      {ds.feature_dim(), 32, ds.num_classes()}, rng);
  nn::Sgd sgd({.learning_rate = 0.05f,
               .momentum = 0.9f,
               .nesterov = true,
               .weight_decay = 5e-4f});
  const std::size_t k = static_cast<std::size_t>(
      fraction * static_cast<double>(ds.train_size()));
  std::vector<std::int32_t> labels(ds.train().labels.begin(),
                                   ds.train().labels.end());
  const auto all = core::iota_indices(ds.train_size());

  for (std::size_t e = 0; e < epochs; ++e) {
    if (policy == Policy::kFull) {
      core::train_one_epoch(model, sgd, ds.train(), all, {}, 64, rng);
      continue;
    }
    if (policy == Policy::kRandom) {
      auto subset = selection::random_subset(ds.train_size(), k, rng);
      core::train_one_epoch(model, sgd, ds.train(), subset, {}, 64, rng);
      continue;
    }
    auto emb = nn::compute_embeddings(model, ds.train().features,
                                      ds.train().labels,
                                      nn::EmbeddingKind::kLogitGrad);
    selection::DriverConfig driver;
    driver.per_class = policy == Policy::kPerClassFl;
    driver.partition_quota = 8;
    driver.seed = seed * 100 + e;
    auto sel = selection::select_coreset(emb.embeddings, labels, {}, k,
                                         driver);
    std::vector<double> weights(sel.weights.begin(), sel.weights.end());
    core::train_one_epoch(model, sgd, ds.train(), sel.indices, weights, 64,
                          rng);
  }

  auto cm = nn::evaluate_confusion(model, ds.test().features,
                                   ds.test().labels);
  Outcome out;
  out.accuracy = cm.accuracy();
  out.macro_recall = cm.macro_recall();
  double rare = 0.0;
  const std::size_t classes = ds.num_classes();
  for (std::size_t c = classes - 3; c < classes; ++c) {
    rare += cm.recall(static_cast<nn::Label>(c));
  }
  out.rare_recall = rare / 3.0;
  return out;
}

}  // namespace

int main() {
  bench::BenchConfig cfg;
  cfg.epochs = bench::env_size_t("NESSA_BENCH_EPOCHS", 15);
  bench::print_banner(
      "Extension: class-imbalanced data (Zipf frequencies, SVHN-like)", cfg);

  data::SyntheticConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_size = 3000;
  dcfg.test_size = 1000;
  dcfg.feature_dim = 29;
  dcfg.class_separation = 3.4;
  dcfg.modes_per_class = 12;
  dcfg.mode_radius = 3.4;
  dcfg.core_spread = 0.25;
  dcfg.hard_fraction = 0.12;
  dcfg.duplicate_fraction = 0.35;
  dcfg.label_noise = 0.02;
  dcfg.class_imbalance = 1.2;  // class 0 ~16x class 9
  dcfg.seed = cfg.seed;
  auto ds = data::make_synthetic(dcfg);

  auto hist = ds.train_class_histogram();
  std::cout << "train class counts: ";
  for (auto c : hist) std::cout << c << " ";
  std::cout << "\n\n";

  const std::size_t seeds = bench::env_size_t("NESSA_BENCH_SEEDS", 5);
  util::Table table;
  table.set_header({"training set", "accuracy (%)", "macro recall (%)",
                    "rare-3 recall (%)"});
  const double budget = 0.10;
  auto add = [&](const std::string& name, Policy policy, double fraction) {
    util::RunningStats acc, macro, rare;
    for (std::size_t s = 0; s < seeds; ++s) {
      auto o = train_and_score(ds, cfg.epochs, fraction, policy, 7 + s);
      acc.add(o.accuracy);
      macro.add(o.macro_recall);
      rare.add(o.rare_recall);
    }
    table.add_row({name, util::Table::pct(acc.mean()),
                   util::Table::pct(macro.mean()),
                   util::Table::pct(rare.mean()) + " +/- " +
                       util::Table::pct(rare.stddev())});
    std::cerr << "[imbalance] " << name << " done\n";
  };
  add("full dataset", Policy::kFull, 1.0);
  add("per-class FL 10 % (paper)", Policy::kPerClassFl, budget);
  add("global FL 10 % (no class structure)", Policy::kGlobalFl, budget);
  add("random 10 %", Policy::kRandom, budget);
  table.print(std::cout);

  std::cout << "\nreading (mean of " << seeds
            << " seeds): the paper's per-class structure guarantees every "
               "class its proportional budget and keeps the most macro and "
               "rare-class recall at a fixed 10 %% budget; dropping the "
               "structure (global selection) gives some of it back, and "
               "random sampling the most.\n";
  return 0;
}
