// Google-benchmark microbenchmarks for the multi-tenant fleet simulator.
// Measures the host-side cost of simulating a fleet (event throughput of
// the shared engine under N device graphs + fair queues), not simulated
// time:
//
//   BM_FleetPoisson/<jobs>     end-to-end run_fleet over a seeded Poisson
//                              stream on a 4-SmartSSD / 2-GPU rack;
//   BM_FleetPreemptive/<jobs>  the same rack with quantum-1 time slicing —
//                              every epoch barrier snapshots through the
//                              ckpt codec and round-robins the queue;
//   BM_FleetHeapEngine/<jobs>  the reference binary-heap engine on the
//                              same workload (calendar-vs-heap overhead);
//   BM_FleetFailover/<jobs>    the preemptive rack with ssd0 killed mid-run
//                              and 1% sticky chunk corruption — prices the
//                              failure path (probe ticks, backlog aborts,
//                              snapshot-restart migration, CRC verify +
//                              re-fetch) on top of the preemptive baseline;
//   BM_FairQueueDispatch       raw FairQueue submit->complete throughput
//                              with 8 contending flows on one component.
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "nessa/fault/fault_plan.hpp"
#include "nessa/fleet/fleet_sim.hpp"
#include "nessa/sim/component.hpp"
#include "nessa/sim/fair_queue.hpp"

using namespace nessa;

namespace {

fleet::FleetConfig rack_config() {
  fleet::FleetConfig config;
  config.devices = 4;
  config.gpus = 2;
  config.jobs_per_device = 4;
  config.queue_capacity = 64;
  config.job.pipeline_epochs = 3;
  return config;
}

std::vector<fleet::Arrival> stream(std::size_t jobs) {
  fleet::PoissonConfig cfg;
  cfg.jobs = jobs;
  cfg.tenants = 8;
  cfg.rate_per_s = 100.0;
  cfg.seed = 42;
  return fleet::poisson_arrivals(cfg);
}

void BM_FleetPoisson(benchmark::State& state) {
  const auto config = rack_config();
  const auto arrivals = stream(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = fleet::run_fleet(config, arrivals);
    benchmark::DoNotOptimize(result.completed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetPoisson)->Arg(100)->Arg(1000);

void BM_FleetPreemptive(benchmark::State& state) {
  auto config = rack_config();
  config.preempt_quantum_epochs = 1;
  const auto arrivals = stream(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = fleet::run_fleet(config, arrivals);
    benchmark::DoNotOptimize(result.preemptions);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetPreemptive)->Arg(100)->Arg(1000);

void BM_FleetHeapEngine(benchmark::State& state) {
  auto config = rack_config();
  config.engine = sim::QueueKind::kHeap;
  const auto arrivals = stream(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = fleet::run_fleet(config, arrivals);
    benchmark::DoNotOptimize(result.completed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetHeapEngine)->Arg(1000);

void BM_FleetFailover(benchmark::State& state) {
  auto config = rack_config();
  config.preempt_quantum_epochs = 1;
  config.job.workload.chunk_records = 2000;
  std::istringstream plan(
      "fail component=ssd0 at_us=5000000 mttr_us=0\n"
      "corrupt rate=0.01\n");
  config.job.fault_plan = fault::FaultPlan::from_stream(plan);
  config.health.probe_interval = 500 * util::kMicrosecond;
  const auto arrivals = stream(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = fleet::run_fleet(config, arrivals);
    benchmark::DoNotOptimize(result.migrations);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetFailover)->Arg(100)->Arg(1000);

void BM_FairQueueDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Component c(sim, "dev");
    sim::FairQueue q(c);
    std::vector<sim::FairQueue::FlowId> flows;
    for (std::uint32_t w = 1; w <= 8; ++w) flows.push_back(q.add_flow(w));
    for (int round = 0; round < 125; ++round) {
      for (const auto f : flows) q.submit(f, 100, 64, "req");
    }
    sim.run();
    benchmark::DoNotOptimize(q.jain_index());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FairQueueDispatch);

}  // namespace
