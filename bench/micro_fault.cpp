// Google-benchmark microbenchmarks for the fault-injection seam. The
// subsystem's zero-cost contract: with no plan installed, the FaultHook
// interception is one pointer test per submit/service, so the event-driven
// pipeline must run within noise (~2%) of the pre-seam BM_EventEpoch
// baseline in BENCH_pipeline.json.
//
//   BM_EventEpochNoFaultPlan    the CIFAR-10 event-model probe with no
//                               plan — directly comparable to
//                               BM_EventEpoch/0;
//   BM_EventEpochDisabledPlan   a plan pointer whose fault list is empty
//                               (must take the exact no-plan path);
//   BM_EventEpochFlakyP2p       the flaky-p2p chaos preset: what injected
//                               failures + retries + the host-path
//                               fallback actually cost;
//   BM_ComponentNoHook          raw component submit/serve throughput,
//                               hook pointer null;
//   BM_ComponentIdleHook        same traffic with an Injector installed
//                               whose plan never targets this component
//                               (the per-event dispatch miss).
#include <benchmark/benchmark.h>

#include "nessa/fault/fault_plan.hpp"
#include "nessa/fault/injector.hpp"
#include "nessa/sim/component.hpp"
#include "nessa/sim/engine.hpp"
#include "nessa/smartssd/device.hpp"
#include "nessa/smartssd/pipeline_sim.hpp"

using namespace nessa;

namespace {

/// The CIFAR-10 / ResNet-20 epoch shape (EpochWorkload defaults).
smartssd::EpochWorkload cifar10_workload() { return smartssd::EpochWorkload{}; }

void BM_EventEpochNoFaultPlan(benchmark::State& state) {
  const auto workload = cifar10_workload();
  smartssd::SystemConfig cfg;
  util::SimTime last = 0;
  for (auto _ : state) {
    const auto trace = smartssd::simulate_pipeline(cfg, workload, 5, smartssd::PipelineOptions{});
    last = trace.steady_epoch_time;
    benchmark::DoNotOptimize(last);
  }
  state.counters["epoch_s"] = util::to_seconds(last);
}
BENCHMARK(BM_EventEpochNoFaultPlan);

void BM_EventEpochDisabledPlan(benchmark::State& state) {
  const auto workload = cifar10_workload();
  smartssd::SystemConfig cfg;
  const fault::FaultPlan disabled;  // no faults: enabled() == false
  smartssd::PipelineOptions opts;
  opts.fault_plan = &disabled;
  util::SimTime last = 0;
  for (auto _ : state) {
    const auto trace = smartssd::simulate_pipeline(cfg, workload, 5, opts);
    last = trace.steady_epoch_time;
    benchmark::DoNotOptimize(last);
  }
  state.counters["epoch_s"] = util::to_seconds(last);
}
BENCHMARK(BM_EventEpochDisabledPlan);

void BM_EventEpochFlakyP2p(benchmark::State& state) {
  const auto workload = cifar10_workload();
  smartssd::SystemConfig cfg;
  const auto plan = fault::FaultPlan::preset("flaky-p2p");
  smartssd::PipelineOptions opts;
  opts.fault_plan = &plan;
  util::SimTime last = 0;
  std::uint64_t injected = 0;
  for (auto _ : state) {
    const auto trace = smartssd::simulate_pipeline(cfg, workload, 5, opts);
    last = trace.steady_epoch_time;
    injected = trace.fault.injected_total();
    benchmark::DoNotOptimize(last);
  }
  state.counters["epoch_s"] = util::to_seconds(last);
  state.counters["injected"] = static_cast<double>(injected);
}
BENCHMARK(BM_EventEpochFlakyP2p);

constexpr int kRequestsPerIteration = 4096;

void drive_component(sim::Component& c, sim::Simulator& sim) {
  for (int i = 0; i < kRequestsPerIteration; ++i) {
    c.submit(100, 4096, "req");
  }
  sim.run();
}

void BM_ComponentNoHook(benchmark::State& state) {
  sim::Simulator sim;
  sim::Component c(sim, "gpu");
  for (auto _ : state) {
    drive_component(c, sim);
  }
  state.SetItemsProcessed(state.iterations() * kRequestsPerIteration);
}
BENCHMARK(BM_ComponentNoHook);

void BM_ComponentIdleHook(benchmark::State& state) {
  // The plan targets p2p; this component is gpu, so every submit/service
  // pays the hook dispatch and misses the spec lookup — the worst case for
  // a component the chaos scenario never touches.
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.component = "p2p";
  spec.rate = 0.5;
  plan.faults.push_back(spec);
  fault::Injector injector(plan);

  sim::Simulator sim;
  sim::Component c(sim, "gpu");
  c.set_fault_hook(&injector);
  for (auto _ : state) {
    drive_component(c, sim);
  }
  state.SetItemsProcessed(state.iterations() * kRequestsPerIteration);
}
BENCHMARK(BM_ComponentIdleHook);

}  // namespace
