// Table 3: CIFAR-10 ablation of NeSSA's optimizations and comparison with
// CRAIG [20] and K-Centers [17] at fixed subset sizes of 10/30/50 %.
//
// Columns (as in the paper):
//   Vanilla = NeSSA with quantized feedback, but no subset biasing (SB) and
//             no dataset partitioning (PA)
//   SB      = + subset biasing          PA     = + partitioning
//   SB+PA   = both                      Goal   = full-data training
// Paper rows (ResNet-20, 200 epochs):
//   10 %: 82.76 / 87.61 / 83.56 / 87.75 | CRAIG 87.07 | K-C 65.72 | 92.44
//   30 %: 89.51 / 90.42 / 90.68 / 90.49 | CRAIG 89.12 | K-C 88.49 | 92.44
//   50 %: 90.59 / 91.89 / 91.81 / 91.92 | CRAIG 90.32 | K-C 90.14 | 92.44
#include <iostream>

#include "bench_common.hpp"

using namespace nessa;

namespace {

core::NessaConfig variant(double fraction, bool sb, bool pa,
                          const bench::BenchConfig& bench_cfg) {
  core::NessaConfig cfg = bench::scaled_nessa(fraction, bench_cfg);
  cfg.subset_biasing = sb;
  if (!pa) cfg.partition_quota = 0;
  // Fixed-budget comparison, as in the paper's table.
  cfg.dynamic_sizing = false;
  cfg.min_subset_fraction = fraction;
  return cfg;
}

}  // namespace

int main() {
  bench::BenchConfig cfg;
  bench::print_banner(
      "Table 3: CIFAR-10 ablation (Vanilla/SB/PA/SB+PA) vs CRAIG/K-Centers",
      cfg);

  auto c = bench::make_case("CIFAR-10", cfg);
  auto& inputs = c.bind();

  smartssd::SmartSsdSystem goal_sys;
  const auto goal = bench::full_run(inputs, goal_sys);
  std::cerr << "[table3] goal done\n";

  util::Table table;
  table.set_header({"Subset (%)", "Vanilla (%)", "SB (%)", "PA (%)",
                    "SB+PA (%)", "CRAIG (%)", "K-Centers (%)", "Goal (%)"});
  for (double fraction : {0.10, 0.30, 0.50}) {
    auto run_variant = [&](bool sb, bool pa) {
      smartssd::SmartSsdSystem sys;
      return bench::nessa_run(inputs, variant(fraction, sb, pa, cfg), sys)
          .final_accuracy;
    };
    const double vanilla = run_variant(false, false);
    const double sb = run_variant(true, false);
    const double pa = run_variant(false, true);
    const double sbpa = run_variant(true, true);
    smartssd::SmartSsdSystem craig_sys, kc_sys;
    const double craig =
        core::run_craig(inputs, fraction, craig_sys).final_accuracy;
    const double kcenters =
        core::run_kcenter(inputs, fraction, kc_sys).final_accuracy;
    table.add_row({util::Table::num(fraction * 100.0, 0),
                   util::Table::pct(vanilla), util::Table::pct(sb),
                   util::Table::pct(pa), util::Table::pct(sbpa),
                   util::Table::pct(craig), util::Table::pct(kcenters),
                   util::Table::pct(goal.final_accuracy)});
    std::cerr << "[table3] subset " << fraction << " done\n";
  }
  table.print(std::cout);
  std::cout << "\npaper shape: NeSSA variants beat CRAIG and K-Centers at "
               "every budget; K-Centers collapses at 10 %; the gap to Goal "
               "closes as the budget grows.\n";
  return 0;
}
