// Table 4: FPGA resource utilization of the NeSSA selection kernel on the
// SmartSSD's Kintex KU15P, from the analytic resource model (calibrated as
// the Vitis implementation report substitute — see DESIGN.md).
//
// Paper: LUT 432k avail / 67.53 %, FF 919k / 23.14 %, BRAM 738 / 50.30 %,
//        DSP 1962 / 42.67 %.
#include <iostream>

#include "nessa/smartssd/resource_model.hpp"
#include "nessa/util/table.hpp"

using namespace nessa;

int main() {
  std::cout << "=== Table 4: resource utilization (KU15P) ===\n\n";
  const smartssd::FpgaBudget budget;
  const smartssd::KernelConfig kernel;
  const auto usage = smartssd::estimate_resources(kernel);

  util::Table table;
  table.set_header({"Resource", "Available", "Used", "Util (%)",
                    "paper (%)"});
  table.add_row({"LUT", util::Table::num(budget.lut),
                 util::Table::num(usage.lut),
                 util::Table::num(usage.lut_pct(budget)), "67.53"});
  table.add_row({"FF", util::Table::num(budget.ff),
                 util::Table::num(usage.ff),
                 util::Table::num(usage.ff_pct(budget)), "23.14"});
  table.add_row({"BRAM", util::Table::num(budget.bram36),
                 util::Table::num(usage.bram36),
                 util::Table::num(usage.bram_pct(budget)), "50.30"});
  table.add_row({"DSP", util::Table::num(budget.dsp),
                 util::Table::num(usage.dsp),
                 util::Table::num(usage.dsp_pct(budget)), "42.67"});
  table.print(std::cout);

  std::cout << "\nkernel config: " << kernel.int8_mac_lanes
            << " int8 MAC lanes, " << kernel.simd_lanes
            << " similarity lanes, chunk capacity " << kernel.chunk_capacity
            << " (buffer "
            << smartssd::chunk_buffer_bytes(kernel.chunk_capacity) / 1024
            << " KiB of " << smartssd::kOnChipBytes / 1000
            << " KB on-chip)\n\n";

  // Ablation: how utilization scales with the kernel's parallelism — the
  // design-space sweep a Vitis user would run.
  util::Table sweep("ablation: lanes vs utilization");
  sweep.set_header({"MAC lanes", "SIMD lanes", "LUT %", "DSP %", "fits?"});
  for (std::size_t mac : {256u, 512u, 1024u, 2048u, 4096u}) {
    smartssd::KernelConfig k = kernel;
    k.int8_mac_lanes = mac;
    k.simd_lanes = mac / 4;
    const auto u = smartssd::estimate_resources(k);
    sweep.add_row({util::Table::num(mac), util::Table::num(k.simd_lanes),
                   util::Table::num(u.lut_pct(budget)),
                   util::Table::num(u.dsp_pct(budget)),
                   u.fits(budget) ? "yes" : "no"});
  }
  sweep.print(std::cout);
  return 0;
}
